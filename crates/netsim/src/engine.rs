//! The discrete-event engine.
//!
//! A [`Sim`] owns a topology, a routing table, the set of active fluid flows
//! and a queue of timestamped events. Protocol logic (cloud-storage upload
//! sessions, rsync exchanges, relays, background generators) is written as
//! [`Process`] state machines that react to events and issue commands through
//! a [`Ctx`].
//!
//! Determinism: the event queue orders by `(time, sequence)`, all randomness
//! flows from one seeded PRNG, and floating-point rate arithmetic is
//! platform-independent — the same seed replays the same run bit-for-bit.

use crate::audit::{AuditHook, Digest};
use crate::error::{NetError, NetResult};
use crate::flow::{AllocMode, FlowClass, FlowCore, FlowProgress, FlowSpec};
use crate::middlebox::{FirewallRule, Policer, PolicerScope};
use crate::routing::RoutingTable;
use crate::tcp::TcpParams;
use crate::time::SimTime;
use crate::topology::{NodeId, Topology};
use crate::units::Bandwidth;
use obs::{Category, SpanId, Telemetry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Handle to an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Handle to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Result value a process can finish with.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No payload.
    None,
    /// A duration or instant.
    Time(SimTime),
    /// A count.
    U64(u64),
    /// A measurement.
    F64(f64),
    /// A short string.
    Text(String),
    /// A heterogeneous list.
    List(Vec<Value>),
    /// A propagated failure (lets processes surface [`NetError`]s as
    /// results instead of panicking).
    Error(NetError),
}

impl Value {
    /// Interpret as a time; panics with context otherwise.
    pub fn expect_time(&self) -> SimTime {
        match self {
            Value::Time(t) => *t,
            other => panic!("expected Value::Time, got {other:?}"),
        }
    }

    /// Interpret as a u64.
    pub fn expect_u64(&self) -> u64 {
        match self {
            Value::U64(v) => *v,
            other => panic!("expected Value::U64, got {other:?}"),
        }
    }

    /// Interpret as a list.
    pub fn expect_list(&self) -> &[Value] {
        match self {
            Value::List(v) => v,
            other => panic!("expected Value::List, got {other:?}"),
        }
    }
}

/// Events delivered to a [`Process`].
#[derive(Debug, Clone)]
pub enum Event {
    /// First event after spawn; issue initial commands here.
    Started,
    /// A flow this process started has fully delivered.
    FlowCompleted {
        /// The completed flow.
        flow: FlowId,
        /// Payload size.
        bytes: u64,
        /// Wall-clock (simulated) duration from start to last-byte delivery.
        elapsed: SimTime,
    },
    /// A flow this process started was cancelled or failed.
    FlowFailed {
        /// The failed flow.
        flow: FlowId,
        /// Why.
        error: NetError,
    },
    /// A timer set via [`Ctx::set_timer`] fired.
    Timer {
        /// The tag passed to `set_timer`.
        tag: u64,
    },
    /// A child process finished.
    ChildDone {
        /// The finished child.
        child: ProcessId,
        /// Its result.
        value: Value,
    },
}

/// A cooperative protocol state machine.
///
/// Processes never block: they receive an [`Event`] and issue commands via
/// [`Ctx`]. A process signals completion by calling [`Ctx::finish`]; its
/// parent (if any) then receives [`Event::ChildDone`].
pub trait Process {
    /// Handle one event.
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event);

    /// Diagnostic name for error messages.
    fn name(&self) -> &'static str {
        "process"
    }

    /// Clean up when the engine abandons this still-live process because
    /// the root of its run finished (a failing session unwinds its whole
    /// process tree). Close any telemetry spans this process opened here;
    /// flows it started are cancelled by the engine afterwards. Spawns,
    /// timers and [`Ctx::finish`] issued from `abort` are discarded.
    fn abort(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Fold process-local state into a determinism digest (see
    /// [`crate::audit`]). Stateful long-running processes (background
    /// generators, monitors) should override this so that divergence in
    /// their internal state is visible to same-seed replay checks; pure
    /// request/response processes can keep the empty default.
    fn digest_into(&self, _d: &mut Digest) {}
}

/// Flow events carry both the flow id and its slab slot: the slot gives
/// O(1) direct indexing in dispatch, the id disambiguates slot reuse (ids
/// are issued monotonically and never recycled, so an id match proves the
/// slot still holds the intended flow).
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Activate {
        flow: u64,
        slot: u32,
    },
    Drained {
        flow: u64,
        slot: u32,
        gen: u64,
    },
    Delivered {
        flow: u64,
        slot: u32,
    },
    Timer {
        pid: u32,
        tag: u64,
    },
    /// Scheduled change of a link's effective capacity (bytes/sec) — a
    /// "dynamic bottleneck" appearing or clearing mid-simulation.
    SetLinkCap {
        link: u32,
        bytes_per_sec: f64,
    },
}

// EventKind carries an f64 (never NaN), so Eq is implemented manually for
// Queued; ordering only ever uses (time, seq).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Queued {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Eq for Queued {}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct ActiveFlow {
    id: u64,
    owner: Option<ProcessId>,
    /// Kept for diagnostics (bottleneck attribution in error paths).
    #[allow(dead_code)]
    class: FlowClass,
    /// Resource indices: real links are `0..links.len()`, aggregate policers
    /// follow.
    resources: Vec<u32>,
    progress: FlowProgress,
    gen: u64,
    total_bytes: u64,
    /// One-way propagation delay, charged after the fluid drains.
    path_delay: SimTime,
    started_at: SimTime,
    active: bool,
    /// Fairness weight (see [`FlowSpec::with_weight`]).
    weight: f64,
    /// Per-flow rate cap, bytes/sec (`f64::INFINITY` when uncapped).
    cap: f64,
    /// The allocator slot [`FlowCore::insert`] returned while the flow is
    /// active (`u32::MAX` otherwise).
    alloc_slot: u32,
    /// A `Drained` event with this flow's *current* generation is queued.
    pending_drain: bool,
    /// Telemetry span covering this flow's lifetime ([`SpanId::NONE`] when
    /// telemetry is disabled).
    span: SpanId,
}

/// Slot-indexed storage for active flows, mirroring the allocator's slab:
/// contiguous slots recycled through a LIFO free list. Events address flows
/// by slot (no hashing on the hot path) and iteration is in slot order —
/// deterministic for a fixed event sequence, so digests need no sorting.
#[derive(Debug, Default)]
struct FlowSlab {
    slots: Vec<Option<ActiveFlow>>,
    free: Vec<u32>,
    live: usize,
}

impl FlowSlab {
    fn insert(&mut self, f: ActiveFlow) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(f);
                s
            }
            None => {
                self.slots.push(Some(f));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn get(&self, slot: u32) -> Option<&ActiveFlow> {
        self.slots.get(slot as usize).and_then(Option::as_ref)
    }

    fn get_mut(&mut self, slot: u32) -> Option<&mut ActiveFlow> {
        self.slots.get_mut(slot as usize).and_then(Option::as_mut)
    }

    fn remove(&mut self, slot: u32) -> Option<ActiveFlow> {
        let f = self.slots.get_mut(slot as usize)?.take()?;
        self.free.push(slot);
        self.live -= 1;
        Some(f)
    }

    /// Live flows in slot order, with their slots.
    fn iter(&self) -> impl Iterator<Item = (u32, &ActiveFlow)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (i as u32, f)))
    }

    /// Live flow count.
    fn len(&self) -> usize {
        self.live
    }
}

/// How the engine accounts fluid progress between events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// Anchored lazy accounting (the fast path): clock advancement is O(1);
    /// each flow's `remaining` is materialized on demand from its last
    /// settle point (see [`FlowProgress`]).
    #[default]
    Lazy,
    /// The legacy per-event sweep, kept as a differential oracle: every
    /// clock step advances a stepped shadow ledger for every active flow
    /// (the pre-lazy `remaining -= rate*dt` arithmetic) and asserts it
    /// agrees with the lazy closed form within float tolerance. All
    /// engine-visible state (drain times, digests) uses the same anchored
    /// arithmetic as [`ProgressMode::Lazy`], so the two modes produce
    /// bit-identical executions — property tests and simcheck rely on this.
    Eager,
}

/// Counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Flows started.
    pub flows_started: u64,
    /// Flows fully delivered.
    pub flows_completed: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Rate reallocations performed.
    pub reallocations: u64,
    /// High-water mark of the event-queue length. Observability only — not
    /// folded into state digests.
    pub peak_queue: u64,
    /// Stale-drain heap compactions performed (not digested).
    pub queue_compactions: u64,
}

/// Everything in the simulator except the process table (split so processes
/// can be polled while holding `&mut Core`).
pub struct Core {
    topo: Topology,
    routing: RoutingTable,
    tcp: TcpParams,
    policers: Vec<Policer>,
    firewalls: Vec<FirewallRule>,
    /// The incremental max-min allocator. Owns the effective resource
    /// capacities (per-run link capacities — equal to the nominal topology
    /// capacities unless jitter is enabled — followed by aggregate policer
    /// rates) and the resource→flow inverted index, and recomputes rates
    /// only for the connected component each flow event touches.
    alloc: FlowCore,
    /// Capacity-jitter fraction; also applied to policer rates as they are
    /// attached (a token bucket's effective rate drifts too).
    jitter: f64,
    /// When true, every rate change of every flow is recorded.
    tracing: bool,
    /// flow id → (time, rate bytes/sec) change points.
    traces: HashMap<u64, Vec<(SimTime, f64)>>,
    flows: FlowSlab,
    /// flow id → slab slot, for the cold id-addressed paths (cancellation);
    /// the hot event paths index the slab directly.
    flow_index: HashMap<u64, u32>,
    /// Queued `Drained` events that can no longer fire (superseded by a
    /// rate change, or their flow was cancelled). Drives heap compaction.
    stale_drains: usize,
    progress_mode: ProgressMode,
    /// Eager-mode shadow ledger: per-slot stepped `remaining`, advanced
    /// with the legacy `remaining -= rate*dt` arithmetic and checked
    /// against the lazy closed form (see [`ProgressMode::Eager`]).
    stepped: Vec<f64>,
    /// Scratch for per-link utilization sampling (avoids one allocation
    /// per reallocation when telemetry is on).
    util_scratch: Vec<f64>,
    next_flow: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    now: SimTime,
    rng: SmallRng,
    stats: SimStats,
    event_budget: u64,
    /// Telemetry sink shared by every layer of the simulation. Disabled by
    /// default: each instrumentation call is then one branch and returns.
    tele: Telemetry,
    /// Fault injection: post-allocation rate multiplier. 1.0 = faithful.
    /// Used by the simcheck harness to prove its oracles catch a broken
    /// allocator; compiled only with the `failpoints` feature.
    #[cfg(feature = "failpoints")]
    overalloc: f64,
}

impl Core {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { time, seq, kind }));
        if self.queue.len() as u64 > self.stats.peak_queue {
            self.stats.peak_queue = self.queue.len() as u64;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Seeded PRNG shared by all stochastic components.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The telemetry sink. Callers stamp records with [`Core::now`] in
    /// nanoseconds; the sink is a no-op unless [`Sim::enable_telemetry`]
    /// was called.
    pub fn telemetry(&mut self) -> &mut Telemetry {
        &mut self.tele
    }

    /// Current simulated time in nanoseconds (telemetry timestamp).
    pub fn now_ns(&self) -> u64 {
        self.now.as_nanos()
    }

    /// Resolve the node path a flow from `src` to `dst` would take.
    pub fn resolve_path(&mut self, src: NodeId, dst: NodeId) -> NetResult<Vec<NodeId>> {
        self.routing.path(&self.topo, src, dst)
    }

    /// Up to `k` distinct loop-free alternatives to the routed shortest
    /// path, cheapest first (see [`crate::oracle::RouteOracle::k_detours`]).
    /// The raw material for detour/relay candidate enumeration.
    pub fn k_detours(
        &mut self,
        src: NodeId,
        dst: NodeId,
        k: usize,
    ) -> NetResult<Vec<crate::oracle::DetourPath>> {
        self.routing.k_detours(&self.topo, src, dst, k)
    }

    /// Round-trip time along the routed path between two nodes.
    pub fn rtt(&mut self, src: NodeId, dst: NodeId) -> NetResult<SimTime> {
        let fwd = self.resolve_path(src, dst)?;
        let back = self.resolve_path(dst, src)?;
        Ok(self.topo.path_delay(&fwd) + self.topo.path_delay(&back))
    }

    /// The rate an isolated flow would get on the routed path (bottleneck
    /// capacity further limited by policers and the TCP ceiling). This is
    /// the simulator's ground truth that probe-based selectors try to
    /// estimate. Uses *nominal* capacities — per-run capacity jitter is
    /// deliberately invisible here, as it would be to a real probe's
    /// long-run average.
    pub fn idle_path_rate(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlowClass,
    ) -> NetResult<Bandwidth> {
        let path = self.resolve_path(src, dst)?;
        let links = self.topo.links_on_path(&path)?;
        let mut rate = self.topo.path_capacity(&links);
        for p in &self.policers {
            if links.iter().any(|&l| p.applies(l, class)) {
                rate = rate.min(p.rate);
            }
        }
        let rtt = self.topo.path_delay(&path) * 2;
        let loss = self.topo.path_loss(&links);
        if let Some(ceiling) = self.tcp.mathis_ceiling(rtt, loss) {
            rate = rate.min(ceiling);
        }
        Ok(rate)
    }

    /// Identify what limits an isolated flow on the routed path: the
    /// binding constraint behind [`Core::idle_path_rate`]. This is the
    /// automated version of the paper's manual traceroute-and-speculate
    /// diagnosis.
    pub fn bottleneck(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlowClass,
    ) -> NetResult<Bottleneck> {
        let path = self.resolve_path(src, dst)?;
        let links = self.topo.links_on_path(&path)?;
        // Narrowest link.
        let (mut best_rate, mut cause) = (f64::INFINITY, BottleneckCause::Unconstrained);
        for &l in &links {
            let link = self.topo.link(l);
            let r = link.capacity.bytes_per_sec();
            if r < best_rate {
                best_rate = r;
                cause = BottleneckCause::Link {
                    from: self.topo.node(link.from).name.clone(),
                    to: self.topo.node(link.to).name.clone(),
                };
            }
        }
        for p in &self.policers {
            if links.iter().any(|&l| p.applies(l, class)) {
                let r = p.rate.bytes_per_sec();
                if r < best_rate {
                    best_rate = r;
                    cause = BottleneckCause::Policer {
                        name: p.name.clone(),
                    };
                }
            }
        }
        let rtt = self.topo.path_delay(&path) * 2;
        let loss = self.topo.path_loss(&links);
        if let Some(ceiling) = self.tcp.mathis_ceiling(rtt, loss) {
            if ceiling.bytes_per_sec() < best_rate {
                best_rate = ceiling.bytes_per_sec();
                cause = BottleneckCause::TcpCeiling { rtt, loss };
            }
        }
        Ok(Bottleneck {
            rate: Bandwidth::from_bytes_per_sec(best_rate),
            cause,
        })
    }

    /// Remove a flow before delivery: release its capacity, emit
    /// `flow.cancelled` and close the flow span. Shared by
    /// [`Ctx::cancel_flow`] and the orphan reap in [`Sim::run_process`].
    fn cancel_flow_inner(&mut self, id: u64) {
        let Some(slot) = self.flow_index.remove(&id) else {
            return;
        };
        let f = self.flows.remove(slot).expect("indexed flow exists");
        let now_ns = self.now.as_nanos();
        self.tele
            .event(now_ns, Category::Flow, "flow.cancelled", f.span, |_| {});
        self.tele.span_end(now_ns, f.span);
        if f.active {
            if f.pending_drain {
                // Its queued Drained event can no longer fire.
                self.stale_drains += 1;
            }
            self.deactivate_flow(f.alloc_slot);
        }
    }

    fn start_flow_inner(&mut self, owner: Option<ProcessId>, spec: FlowSpec) -> NetResult<FlowId> {
        if spec.bytes == 0 {
            return Err(NetError::EmptyTransfer);
        }
        let path = match &spec.path {
            Some(p) => {
                self.topo.links_on_path(p)?; // validate adjacency
                p.clone()
            }
            None => self.routing.path(&self.topo, spec.src, spec.dst)?,
        };
        let links = self.topo.links_on_path(&path)?;

        // Firewalls drop the flow outright.
        for fw in &self.firewalls {
            for &l in &links {
                if fw.blocks(l, spec.class) {
                    return Err(NetError::Blocked {
                        at: self.topo.link(l).from,
                        reason: "firewall",
                    });
                }
            }
        }

        // Resource list: real links plus any aggregate policers matched.
        let mut resources: Vec<u32> = links.iter().map(|l| l.0).collect();
        let mut cap = f64::INFINITY;
        for (i, p) in self.policers.iter().enumerate() {
            let matched = links.iter().any(|&l| p.applies(l, spec.class));
            if matched {
                match p.scope {
                    PolicerScope::PerFlow => cap = cap.min(p.rate.bytes_per_sec()),
                    PolicerScope::Aggregate => resources.push((self.topo.links().len() + i) as u32),
                }
            }
        }
        if let Some(c) = spec.cap {
            cap = cap.min(c.bytes_per_sec());
        }
        let one_way = self.topo.path_delay(&path);
        let rtt = one_way * 2;
        let loss = self.topo.path_loss(&links);
        if let Some(ceiling) = self.tcp.mathis_ceiling(rtt, loss) {
            cap = cap.min(ceiling.bytes_per_sec());
        }

        let startup = if spec.slow_start {
            let equilibrium = self
                .topo
                .path_capacity(&links)
                .min(Bandwidth::from_bytes_per_sec(if cap.is_finite() {
                    cap
                } else {
                    1e18
                }));
            self.tcp.slow_start_delay(rtt, equilibrium)
        } else {
            SimTime::ZERO
        };

        let id = self.next_flow;
        self.next_flow += 1;
        self.stats.flows_started += 1;
        let topo = &self.topo;
        let (src, dst, class) = (spec.src, spec.dst, spec.class);
        let span = self.tele.span_begin_with(
            self.now.as_nanos(),
            Category::Flow,
            "flow",
            spec.parent_span,
            |a| {
                a.set("flow", id)
                    .set("src", topo.node(src).name.as_str())
                    .set("dst", topo.node(dst).name.as_str())
                    .set("bytes", spec.bytes)
                    .set("class", class.label());
            },
        );
        self.tele.counter_add("netsim.flows_started", 1);
        let flow = ActiveFlow {
            id,
            owner,
            class: spec.class,
            resources,
            progress: FlowProgress::new(spec.bytes as f64, self.now),
            gen: 0,
            total_bytes: spec.bytes,
            path_delay: one_way,
            started_at: self.now,
            active: false,
            weight: spec.weight,
            cap,
            alloc_slot: u32::MAX,
            pending_drain: false,
            span,
        };
        let slot = self.flows.insert(flow);
        self.flow_index.insert(id, slot);
        self.push(self.now + startup, EventKind::Activate { flow: id, slot });
        Ok(FlowId(id))
    }

    /// A flow's startup delay elapsed: hand it to the allocator and apply
    /// the resulting rate changes (its connected component only).
    fn activate_flow(&mut self, slot: u32) {
        // Allocator latency is wall-clock and goes to the metrics registry
        // only — never into the span/event stream, which must stay a pure
        // function of the scenario and seed.
        let t0 = self.tele.is_enabled().then(std::time::Instant::now);
        {
            let f = self.flows.get_mut(slot).expect("activated flow exists");
            f.alloc_slot = self
                .alloc
                .insert(f.id, slot as u64, &f.resources, f.cap, f.weight);
        }
        self.apply_rate_changes(t0);
    }

    /// A flow drained or was cancelled: release its allocator slot and
    /// re-share within its component.
    fn deactivate_flow(&mut self, alloc_slot: u32) {
        let t0 = self.tele.is_enabled().then(std::time::Instant::now);
        self.alloc.remove_slot(alloc_slot);
        self.apply_rate_changes(t0);
    }

    /// A resource's capacity changed: re-share within its component.
    fn change_capacity(&mut self, resource: u32, bytes_per_sec: f64) {
        let t0 = self.tele.is_enabled().then(std::time::Instant::now);
        self.alloc.set_capacity(resource, bytes_per_sec);
        self.apply_rate_changes(t0);
    }

    /// Apply the rate changes the allocator just computed: update each
    /// changed flow's progress, supersede its scheduled drain event
    /// (generation bump) and schedule a new one. Flows whose rate did not
    /// change — everything outside the event's connected component, plus
    /// unaffected flows within it — keep their rates *and* their already
    /// queued drain events, which is what makes reallocation O(component)
    /// instead of O(all flows).
    fn apply_rate_changes(&mut self, t0: Option<std::time::Instant>) {
        self.stats.reallocations += 1;
        if let Some(t0) = t0 {
            self.tele
                .hist_record("netsim.realloc_wall_ns", t0.elapsed().as_nanos() as u64);
            self.tele.counter_add("netsim.reallocations", 1);
            self.tele
                .gauge_set("netsim.active_flows", self.alloc.len() as f64);
        }
        let now = self.now;
        let now_ns = now.as_nanos();
        let changes = self.alloc.take_changes();
        for c in &changes {
            let rate = c.rate;
            // Failpoint: inflate every allocated rate. Inert at the default
            // factor of 1.0 (multiplication by 1.0 is bit-exact for finite
            // f64), so digests match builds without the feature.
            #[cfg(feature = "failpoints")]
            let rate = rate * self.overalloc;
            let slot = c.token as u32;
            let (fid, gen, finish, span, noticeable) = {
                let f = self.flows.get_mut(slot).expect("changed flow exists");
                debug_assert_eq!(f.id, c.id, "allocator token resolves its flow");
                let noticeable = (f.progress.rate - rate).abs() > 1e-9;
                if f.pending_drain {
                    // The queued Drained event stops matching the flow's
                    // generation once we bump it below: it rots in the heap
                    // until popped or compacted away.
                    self.stale_drains += 1;
                }
                // Settle at the old rate, then switch: `remaining` re-anchors
                // at `now`, so the projected finish below is exact.
                f.progress.settle(now);
                f.progress.rate = rate;
                f.gen += 1;
                let finish = f.progress.projected_finish(now);
                f.pending_drain = finish.is_some();
                (f.id, f.gen, finish, f.span, noticeable)
            };
            if let Some(finish) = finish {
                self.push(
                    finish,
                    EventKind::Drained {
                        flow: fid,
                        slot,
                        gen,
                    },
                );
            }
            if noticeable {
                self.tele
                    .event(now_ns, Category::Flow, "flow.rate", span, |a| {
                        a.set("bytes_per_sec", rate);
                    });
            }
            if self.tracing && noticeable {
                self.traces.entry(c.id).or_default().push((now, rate));
            }
        }
        self.alloc.restore_changes(changes);
        // Per-link utilization samples: share of each crossed link's
        // capacity consumed by the new allocation.
        if self.tele.is_enabled() {
            let n_links = self.topo.links().len();
            self.alloc.used_per_resource(&mut self.util_scratch);
            for (u, cap) in self
                .util_scratch
                .iter()
                .zip(self.alloc.capacities())
                .take(n_links)
            {
                if *u > 0.0 && *cap > 0.0 {
                    let pct = (u / cap * 100.0).clamp(0.0, 100.0);
                    self.tele
                        .hist_record("netsim.link_utilization_pct", pct.round() as u64);
                }
            }
        }
        self.maybe_compact();
    }

    /// True when a queued `Drained` event will fire on arrival: its slot
    /// still holds the intended flow, active, at the same generation. The
    /// dispatch guard, the digest's pending-queue filter and compaction
    /// retention all share this one predicate — which is what makes
    /// compaction invisible to the chained state digest.
    fn drain_is_live(&self, flow: u64, slot: u32, gen: u64) -> bool {
        matches!(self.flows.get(slot), Some(f) if f.id == flow && f.active && f.gen == gen)
    }

    /// Rebuild the heap without stale `Drained` entries once they number at
    /// least [`Self::COMPACT_MIN_STALE`] and outnumber live entries.
    /// Surviving entries keep their `(time, seq)` keys, and stale entries
    /// are already excluded from the digest's queue snapshot, so compaction
    /// never perturbs same-seed digests — it only bounds queue occupancy
    /// (and heap-maintenance cost) by the live event count.
    fn maybe_compact(&mut self) {
        if self.stale_drains < Self::COMPACT_MIN_STALE || self.stale_drains * 2 <= self.queue.len()
        {
            return;
        }
        let before = self.queue.len();
        let kept: BinaryHeap<Reverse<Queued>> = std::mem::take(&mut self.queue)
            .into_iter()
            .filter(|r| match r.0.kind {
                EventKind::Drained { flow, slot, gen } => self.drain_is_live(flow, slot, gen),
                _ => true,
            })
            .collect();
        debug_assert_eq!(
            before - kept.len(),
            self.stale_drains,
            "stale accounting matches heap contents"
        );
        self.queue = kept;
        self.stale_drains = 0;
        self.stats.queue_compactions += 1;
    }

    /// Compaction threshold: don't bother rebuilding tiny heaps.
    const COMPACT_MIN_STALE: usize = 64;

    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "time went backwards");
        if self.progress_mode == ProgressMode::Eager {
            self.eager_sweep(t);
        }
        self.now = t;
        // The engine clock is the watermark of the streaming-aggregation
        // plane: windowed series whose tumbling window now lies entirely
        // in the past flush here, even if the series has gone idle.
        self.tele.advance_watermark(t.as_nanos());
    }

    /// The legacy per-event progress sweep ([`ProgressMode::Eager`]): step
    /// the shadow ledger of every active flow with the pre-lazy
    /// `remaining -= rate*dt` arithmetic and check it against the lazy
    /// closed form. Engine-visible state is untouched — both modes share
    /// the anchored arithmetic, keeping executions bit-identical.
    fn eager_sweep(&mut self, t: SimTime) {
        let dt = t.saturating_sub(self.now);
        if dt.is_zero() {
            return;
        }
        let dt = dt.as_secs_f64();
        for (slot, f) in self.flows.iter() {
            if !f.active {
                continue;
            }
            let s = &mut self.stepped[slot as usize];
            *s = (*s - f.progress.rate * dt).max(0.0);
            let lazy = f.progress.remaining_at(t);
            let tol = 1e-6 * (f.total_bytes as f64).max(1.0);
            assert!(
                (*s - lazy).abs() <= tol,
                "eager/lazy progress divergence on flow {}: stepped {} vs lazy {}",
                f.id,
                *s,
                lazy
            );
        }
    }

    /// Fold the complete core state — clock, counters, effective link
    /// capacities, every flow, the pending event queue and the routing
    /// table — into `d`, in a deterministic order (hash-map contents are
    /// sorted first).
    fn digest_into(&self, d: &mut Digest) {
        d.write_time(self.now);
        d.write_u64(self.seq);
        d.write_u64(self.next_flow);
        d.write_u64(self.stats.events);
        d.write_u64(self.stats.flows_started);
        d.write_u64(self.stats.flows_completed);
        d.write_u64(self.stats.bytes_delivered);
        d.write_u64(self.stats.reallocations);
        for cap in &self.alloc.capacities()[..self.topo.links().len()] {
            d.write_f64(*cap);
        }
        // Slab order is a pure function of the event sequence, so no
        // sorting is needed for determinism.
        for (slot, f) in self.flows.iter() {
            d.write_u64(slot as u64);
            d.write_u64(f.id);
            d.write_bool(f.active);
            d.write_u64(f.gen);
            d.write_u64(f.total_bytes);
            d.write_f64(f.weight);
            d.write_time(f.path_delay);
            d.write_time(f.started_at);
            for r in &f.resources {
                d.write_u64(*r as u64);
            }
            f.progress.digest_into(d);
            d.write_f64(f.cap);
        }
        // Stale Drained events are skipped: they can never fire, and heap
        // compaction may remove them at any point — excluding them here is
        // what keeps compaction digest-invisible.
        let mut pending: Vec<Queued> = self
            .queue
            .iter()
            .map(|r| r.0)
            .filter(|q| match q.kind {
                EventKind::Drained { flow, slot, gen } => self.drain_is_live(flow, slot, gen),
                _ => true,
            })
            .collect();
        pending.sort_unstable();
        for q in pending {
            d.write_time(q.time);
            d.write_u64(q.seq);
            q.kind.digest_into(d);
        }
        self.routing.digest_into(d);
    }

    /// 64-bit digest of the core state (see [`Sim::state_digest`] for the
    /// variant that also covers process-local state).
    pub fn state_digest(&self) -> u64 {
        let mut d = Digest::new();
        self.digest_into(&mut d);
        d.finish()
    }
}

impl EventKind {
    fn digest_into(&self, d: &mut Digest) {
        match self {
            EventKind::Activate { flow, slot } => {
                d.write_u8(1);
                d.write_u64(*flow);
                d.write_u64(*slot as u64);
            }
            EventKind::Drained { flow, slot, gen } => {
                d.write_u8(2);
                d.write_u64(*flow);
                d.write_u64(*slot as u64);
                d.write_u64(*gen);
            }
            EventKind::Delivered { flow, slot } => {
                d.write_u8(3);
                d.write_u64(*flow);
                d.write_u64(*slot as u64);
            }
            EventKind::Timer { pid, tag } => {
                d.write_u8(4);
                d.write_u64(*pid as u64);
                d.write_u64(*tag);
            }
            EventKind::SetLinkCap {
                link,
                bytes_per_sec,
            } => {
                d.write_u8(5);
                d.write_u64(*link as u64);
                d.write_f64(*bytes_per_sec);
            }
        }
    }
}

/// Read-only engine snapshot handed to [`AuditHook::after_event`].
pub struct AuditView<'a> {
    core: &'a Core,
}

/// One flow as an invariant oracle sees it.
#[derive(Debug, Clone)]
pub struct AuditFlow<'a> {
    /// Flow id.
    pub id: u64,
    /// Is the flow currently transferring (between activation and drain)?
    pub active: bool,
    /// Allocated rate, bytes/sec (stale once `active` is false).
    pub rate: f64,
    /// Fluid bytes still to move.
    pub remaining: f64,
    /// Requested payload size.
    pub total_bytes: u64,
    /// Fairness weight.
    pub weight: f64,
    /// Per-flow rate cap in bytes/sec (`f64::INFINITY` when uncapped).
    pub cap: f64,
    /// Indices of the resources the flow crosses (links, then aggregate
    /// policers) — the same indices used by the allocator.
    pub resources: &'a [u32],
}

impl<'a> AuditView<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.stats.events
    }

    /// Number of real links (resource indices below this are links;
    /// at and above are aggregate policers).
    pub fn n_links(&self) -> usize {
        self.core.topo.links().len()
    }

    /// Effective capacity (bytes/sec) of every allocatable resource, in the
    /// exact order the allocator sees them: per-run link capacities first,
    /// then aggregate policer rates.
    pub fn resource_capacities(&self) -> Vec<f64> {
        self.core.alloc.capacities().to_vec()
    }

    /// Every flow currently known to the engine, sorted by id — the same
    /// order the allocator processes them in. `remaining` is materialized
    /// from the lazy anchor at the current clock, so oracles see the same
    /// values the old eager sweep maintained.
    pub fn flows(&self) -> Vec<AuditFlow<'a>> {
        let now = self.core.now;
        let mut v: Vec<AuditFlow<'a>> = self
            .core
            .flows
            .iter()
            .map(|(_, f)| AuditFlow {
                id: f.id,
                active: f.active,
                rate: f.progress.rate,
                remaining: f.progress.remaining_at(now),
                total_bytes: f.total_bytes,
                weight: f.weight,
                cap: f.cap,
                resources: &f.resources,
            })
            .collect();
        v.sort_unstable_by_key(|f| f.id);
        v
    }

    /// Digest of the core state at this instant (chain these across events
    /// for an execution fingerprint).
    pub fn state_digest(&self) -> u64 {
        self.core.state_digest()
    }
}

/// The simulator.
pub struct Sim {
    core: Core,
    processes: Vec<ProcSlot>,
    root_result: Option<Value>,
    /// Audit hook invoked after every event (held on `Sim`, not `Core`, so
    /// the hook can observe `Core` without aliasing it).
    audit: Option<Box<dyn AuditHook>>,
}

struct ProcSlot {
    proc_: Option<Box<dyn Process>>,
    parent: Option<ProcessId>,
    alive: bool,
}

/// Deferred effects collected while a process handler runs.
#[derive(Default)]
struct Effects {
    spawned: Vec<(ProcessId, Option<ProcessId>, Box<dyn Process>)>,
    finished: Option<Value>,
}

/// The command surface available to a [`Process`] while handling an event.
pub struct Ctx<'a> {
    core: &'a mut Core,
    pid: ProcessId,
    next_pid: &'a mut u32,
    effects: &'a mut Effects,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Seeded PRNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.core.rng()
    }

    /// Read-only topology access.
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }

    /// Start a flow owned by this process; completion arrives as
    /// [`Event::FlowCompleted`].
    pub fn start_flow(&mut self, spec: FlowSpec) -> NetResult<FlowId> {
        self.core.start_flow_inner(Some(self.pid), spec)
    }

    /// Set a timer; fires as [`Event::Timer`] with the given tag.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        let t = self.core.now + delay;
        self.core.push(
            t,
            EventKind::Timer {
                pid: self.pid.0,
                tag,
            },
        );
    }

    /// Spawn a child process; its completion arrives as [`Event::ChildDone`].
    pub fn spawn(&mut self, p: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(*self.next_pid);
        *self.next_pid += 1;
        self.effects.spawned.push((pid, Some(self.pid), p));
        pid
    }

    /// Finish this process with a result; the parent is notified.
    pub fn finish(&mut self, v: Value) {
        self.effects.finished = Some(v);
    }

    /// Cancel a flow this process started. The flow's capacity is released
    /// immediately; an [`Event::FlowFailed`] is *not* delivered (the caller
    /// already knows).
    pub fn cancel_flow(&mut self, id: FlowId) {
        self.core.cancel_flow_inner(id.0);
    }

    /// The telemetry sink (see [`Core::telemetry`]).
    pub fn telemetry(&mut self) -> &mut Telemetry {
        self.core.telemetry()
    }

    /// Current simulated time in nanoseconds (telemetry timestamp).
    pub fn now_ns(&self) -> u64 {
        self.core.now.as_nanos()
    }

    /// Resolve the routed path between two nodes (diagnostics).
    pub fn resolve_path(&mut self, src: NodeId, dst: NodeId) -> NetResult<Vec<NodeId>> {
        self.core.resolve_path(src, dst)
    }

    /// Round-trip time between two nodes along routed paths.
    pub fn rtt(&mut self, src: NodeId, dst: NodeId) -> NetResult<SimTime> {
        self.core.rtt(src, dst)
    }
}

/// What limits a path's single-flow rate (see [`Core::bottleneck`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// The binding rate.
    pub rate: Bandwidth,
    /// Which constraint binds.
    pub cause: BottleneckCause,
}

/// The binding constraint of a path.
#[derive(Debug, Clone, PartialEq)]
pub enum BottleneckCause {
    /// A link's capacity (named by its endpoints).
    Link {
        /// Upstream node name.
        from: String,
        /// Downstream node name.
        to: String,
    },
    /// A traffic policer.
    Policer {
        /// The policer's diagnostic name.
        name: String,
    },
    /// The TCP loss/RTT ceiling.
    TcpCeiling {
        /// Path round-trip time.
        rtt: SimTime,
        /// End-to-end loss probability.
        loss: f64,
    },
    /// Nothing binds (degenerate zero-hop path).
    Unconstrained,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cause {
            BottleneckCause::Link { from, to } => {
                write!(f, "{} (link {from} → {to})", self.rate)
            }
            BottleneckCause::Policer { name } => write!(f, "{} (policer {name})", self.rate),
            BottleneckCause::TcpCeiling { rtt, loss } => {
                write!(f, "{} (TCP ceiling: rtt {rtt}, loss {loss:.4})", self.rate)
            }
            BottleneckCause::Unconstrained => write!(f, "unconstrained"),
        }
    }
}

/// A flow's recorded rate timeline (see [`Sim::enable_flow_tracing`]).
#[derive(Debug, Clone, Default)]
pub struct FlowTrace {
    /// `(time, rate bytes/sec)` change points, in time order.
    pub points: Vec<(SimTime, f64)>,
}

impl FlowTrace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrate the step function: total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0.saturating_sub(w[0].0)).as_secs_f64();
            total += w[0].1 * dt;
        }
        total
    }

    /// Resample into `n` equal time buckets of *average rate* (bytes/sec)
    /// between the first and last change points. Suitable for sparklines.
    pub fn sample(&self, n: usize) -> Vec<f64> {
        assert!(n > 0);
        if self.points.len() < 2 {
            return vec![0.0; n];
        }
        let t0 = self.points[0].0.as_secs_f64();
        let t1 = self.points.last().expect("nonempty").0.as_secs_f64();
        let span = (t1 - t0).max(1e-12);
        let bucket = span / n as f64;
        let mut out = vec![0.0f64; n];
        for w in self.points.windows(2) {
            let (mut a, rate) = (w[0].0.as_secs_f64(), w[0].1);
            let b = w[1].0.as_secs_f64();
            while a < b {
                let idx = (((a - t0) / bucket) as usize).min(n - 1);
                let bucket_end = t0 + (idx + 1) as f64 * bucket;
                let step = (b.min(bucket_end) - a).max(0.0);
                out[idx] += rate * step;
                a += step.max(1e-12);
            }
        }
        for v in &mut out {
            *v /= bucket;
        }
        out
    }
}

/// A request for a single bulk transfer (the simplest simulation driver).
#[derive(Debug, Clone)]
pub struct TransferRequest {
    /// Underlying flow parameters.
    pub spec: FlowSpec,
}

impl TransferRequest {
    /// A transfer with default class [`FlowClass::Commodity`].
    pub fn new(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        TransferRequest {
            spec: FlowSpec::new(src, dst, bytes, FlowClass::Commodity),
        }
    }

    /// A transfer with an explicit class.
    pub fn with_class(src: NodeId, dst: NodeId, bytes: u64, class: FlowClass) -> Self {
        TransferRequest {
            spec: FlowSpec::new(src, dst, bytes, class),
        }
    }
}

/// Result of a completed transfer.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Payload size.
    pub bytes: u64,
    /// Total duration from request to last-byte delivery.
    pub elapsed: SimTime,
}

impl TransferReport {
    /// Achieved goodput.
    pub fn throughput(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.bytes as f64 / self.elapsed.as_secs_f64().max(1e-12))
    }
}

struct OneShotTransfer {
    spec: Option<FlowSpec>,
    started: SimTime,
}

impl Process for OneShotTransfer {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                let spec = self.spec.take().expect("started once");
                if let Err(e) = ctx.start_flow(spec) {
                    ctx.finish(Value::Error(e));
                }
            }
            Event::FlowCompleted { elapsed, .. } => ctx.finish(Value::Time(elapsed)),
            Event::FlowFailed { error, .. } => ctx.finish(Value::Error(error)),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "one-shot-transfer"
    }
}

impl Sim {
    /// Build a simulator over a topology with a deterministic seed.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let link_caps: Vec<f64> = topo
            .links()
            .iter()
            .map(|l| l.capacity.bytes_per_sec())
            .collect();
        Sim {
            core: Core {
                alloc: FlowCore::new(link_caps),
                jitter: 0.0,
                tracing: false,
                traces: HashMap::new(),
                topo,
                routing: RoutingTable::new(),
                tcp: TcpParams::default(),
                policers: Vec::new(),
                firewalls: Vec::new(),
                flows: FlowSlab::default(),
                flow_index: HashMap::new(),
                stale_drains: 0,
                progress_mode: ProgressMode::default(),
                stepped: Vec::new(),
                util_scratch: Vec::new(),
                next_flow: 1,
                queue: BinaryHeap::new(),
                seq: 0,
                now: SimTime::ZERO,
                rng: SmallRng::seed_from_u64(seed),
                stats: SimStats::default(),
                event_budget: 50_000_000,
                tele: Telemetry::disabled(),
                #[cfg(feature = "failpoints")]
                overalloc: 1.0,
            },
            processes: Vec::new(),
            root_result: None,
            audit: None,
        }
    }

    /// Install an [`AuditHook`], invoked after every processed event while a
    /// root process runs. Replaces any previous hook.
    pub fn set_audit_hook(&mut self, hook: Box<dyn AuditHook>) {
        self.audit = Some(hook);
    }

    /// Remove and return the installed audit hook.
    pub fn take_audit_hook(&mut self) -> Option<Box<dyn AuditHook>> {
        self.audit.take()
    }

    /// Full deterministic state digest: the core (clock, flows, queue,
    /// routing) plus every live process's [`Process::digest_into`]
    /// contribution. Two same-seed executions of the same scenario must
    /// produce identical digests at every event — the simcheck determinism
    /// oracle is built on this.
    pub fn state_digest(&self) -> u64 {
        let mut d = Digest::new();
        self.core.digest_into(&mut d);
        for (i, slot) in self.processes.iter().enumerate() {
            d.write_u64(i as u64);
            d.write_bool(slot.alive);
            if let Some(p) = &slot.proc_ {
                p.digest_into(&mut d);
            }
        }
        d.finish()
    }

    /// Test-only fault injection: multiply every allocated flow rate by
    /// `factor` after max-min allocation. A factor above 1.0 makes the
    /// engine over-subscribe saturated links — the simcheck harness uses
    /// this to prove its oracles catch over-allocation. Compiled only with
    /// the `failpoints` feature.
    #[cfg(feature = "failpoints")]
    pub fn inject_rate_inflation(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid rate inflation {factor}"
        );
        self.core.overalloc = factor;
    }

    fn audit_after_event(&mut self) {
        if let Some(mut hook) = self.audit.take() {
            hook.after_event(&AuditView { core: &self.core });
            self.audit = Some(hook);
        }
    }

    /// Override TCP model parameters.
    pub fn set_tcp(&mut self, tcp: TcpParams) {
        self.core.tcp = tcp;
    }

    /// Apply symmetric per-run capacity jitter: every link's effective
    /// capacity for this simulation is drawn uniformly from
    /// `nominal × [1-frac, 1+frac]` using the sim's seeded PRNG. Models the
    /// run-to-run rate variability real WAN paths exhibit even when idle
    /// (the paper's error bars never vanish). Call once, right after
    /// construction.
    pub fn set_capacity_jitter(&mut self, frac: f64) {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction out of range: {frac}"
        );
        use rand::Rng;
        self.core.jitter = frac;
        for (i, link) in self.core.topo.links().iter().enumerate() {
            let k: f64 = self.core.rng.gen_range(1.0 - frac..=1.0 + frac);
            self.core
                .alloc
                .set_capacity(i as u32, link.capacity.bytes_per_sec() * k);
        }
    }

    /// Install a route override.
    pub fn add_route_override(&mut self, ov: crate::routing::RouteOverride) {
        self.core.routing.add_override(ov);
    }

    /// Attach a policer. If capacity jitter is enabled, the policer's
    /// effective rate for this run is jittered by the same fraction.
    pub fn add_policer(&mut self, mut p: Policer) {
        if self.core.jitter > 0.0 {
            use rand::Rng;
            let j = self.core.jitter;
            let k: f64 = self.core.rng.gen_range(1.0 - j..=1.0 + j);
            p.rate = p.rate * k;
        }
        // Aggregate policers are allocatable resources; their index
        // convention is `n_links + position` (see `start_flow_inner`).
        self.core.alloc.push_resource(p.rate.bytes_per_sec());
        self.core.policers.push(p);
    }

    /// Select the allocator strategy: the component-scoped incremental
    /// allocator (default) or the full-recompute reference. Both produce
    /// bitwise-identical executions (see [`FlowCore`]); simcheck runs every
    /// scenario under both and compares chained state digests.
    pub fn set_allocator_mode(&mut self, mode: AllocMode) {
        self.core.alloc.set_mode(mode);
    }

    /// Select the routing backend: the precomputed route oracle (default)
    /// or the per-query reference Dijkstra. Both produce bit-identical
    /// executions (see [`crate::routing::RoutingTable`]); simcheck runs
    /// every scenario under both and compares chained state digests.
    pub fn set_routing_mode(&mut self, mode: crate::routing::RoutingMode) {
        self.core.routing.set_mode(mode);
    }

    /// Select the progress-accounting mode (see [`ProgressMode`]). Call
    /// before starting transfers. Both modes produce bit-identical
    /// executions; [`ProgressMode::Eager`] additionally runs the legacy
    /// per-event sweep as a differential oracle, making every clock step
    /// O(all flows) again.
    pub fn set_progress_mode(&mut self, mode: ProgressMode) {
        self.core.progress_mode = mode;
    }

    /// Attach a firewall rule.
    pub fn add_firewall(&mut self, f: FirewallRule) {
        self.core.firewalls.push(f);
    }

    /// Cap the number of processed events (livelock guard).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.core.event_budget = budget;
    }

    /// Record every flow's rate changes (for post-run timelines). Call
    /// before starting transfers; modest memory cost per reallocation.
    pub fn enable_flow_tracing(&mut self) {
        self.core.tracing = true;
    }

    /// The recorded rate timeline of a flow: `(time, bytes/sec)` change
    /// points, ending with a 0.0 entry when the flow drained. `None` unless
    /// [`Sim::enable_flow_tracing`] was called before the flow ran.
    pub fn flow_trace(&self, flow: FlowId) -> Option<FlowTrace> {
        if !self.core.tracing {
            return None;
        }
        Some(FlowTrace {
            points: self.core.traces.get(&flow.0).cloned().unwrap_or_default(),
        })
    }

    /// Turn on span/event/metric recording for the rest of the run. All
    /// timestamps are simulated time, so the recording is deterministic for
    /// a fixed topology and seed.
    pub fn enable_telemetry(&mut self) {
        self.core.tele = Telemetry::enabled();
    }

    /// The telemetry sink (for layers that record between process events).
    pub fn telemetry(&mut self) -> &mut Telemetry {
        self.core.telemetry()
    }

    /// Take the finished recording; `None` when telemetry was never
    /// enabled. Leaves the sink disabled.
    pub fn take_telemetry(&mut self) -> Option<obs::Recording> {
        self.core.tele.take()
    }

    /// Schedule a link-capacity change at a future simulated time: a
    /// dynamic bottleneck appearing (rate drop) or clearing (rate rise).
    /// Active flows re-share bandwidth at that instant. Used to exercise
    /// the route monitor's "bypass dynamic bottlenecks" behaviour — the
    /// paper's closing future-work item.
    pub fn schedule_capacity_change(
        &mut self,
        link: crate::topology::LinkId,
        at: SimTime,
        capacity: Bandwidth,
    ) {
        assert!(
            (link.0 as usize) < self.core.topo.links().len(),
            "unknown link {link}"
        );
        self.core.push(
            at,
            EventKind::SetLinkCap {
                link: link.0,
                bytes_per_sec: capacity.bytes_per_sec(),
            },
        );
    }

    /// Read-only core access (time, stats, topology, path resolution).
    pub fn core(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Current simulated time in nanoseconds (telemetry timestamp unit).
    pub fn now_ns(&self) -> u64 {
        self.core.now.as_nanos()
    }

    /// Engine counters.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }

    /// Flows currently known to the engine (started, not yet delivered).
    pub fn live_flows(&self) -> usize {
        self.core.flows.len()
    }

    /// Current event-queue occupancy (live and stale entries).
    pub fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    /// Connected components of the allocator-active flow set, in canonical
    /// order (see [`crate::flow::FlowCore::components`]) — the partition
    /// the sharded executor ([`crate::shard`]) distributes over. Flows that
    /// have drained but not yet delivered no longer couple resources and
    /// are absent.
    pub fn flow_components(&self) -> Vec<Vec<u64>> {
        self.core.alloc.components()
    }

    /// Spawn a detached (parentless, result-discarded) process — used for
    /// background traffic generators that run for the whole simulation.
    pub fn spawn_detached(&mut self, p: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcSlot {
            proc_: Some(p),
            parent: None,
            alive: true,
        });
        self.deliver(pid, Event::Started);
        pid
    }

    /// Run a root process to completion and return its result.
    pub fn run_process(&mut self, p: Box<dyn Process>) -> NetResult<Value> {
        let root = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcSlot {
            proc_: Some(p),
            parent: None,
            alive: true,
        });
        self.root_result = None;
        self.deliver_root(root, Event::Started);
        self.audit_after_event();
        if let Some(v) = self.root_result.take() {
            self.reap_orphans(root);
            return Ok(v);
        }
        let mut processed: u64 = 0;
        while let Some(Reverse(q)) = self.core.queue.pop() {
            processed += 1;
            self.core.stats.events += 1;
            if processed > self.core.event_budget {
                return Err(NetError::EventBudgetExhausted { events: processed });
            }
            self.core.advance_to(q.time);
            self.dispatch(q.kind, root);
            self.audit_after_event();
            if let Some(v) = self.root_result.take() {
                self.reap_orphans(root);
                return Ok(v);
            }
        }
        Err(NetError::NoResult)
    }

    /// Unwind what the finished root strands behind. A root that finishes
    /// early (a session aborting on a retry-budget or deadline error)
    /// orphans its still-live descendants: their process-owned telemetry
    /// spans would never end and their flows would hold link capacity into
    /// any later run on the same sim. Each orphan gets a
    /// [`Process::abort`] callback to close its spans, then every flow the
    /// orphans own is cancelled. Flows the *root itself* leaves running
    /// are kept — a driver may deliberately finish with long-lived flows
    /// still in flight — and detached background processes are not
    /// descendants of `root`, so they keep running too.
    fn reap_orphans(&mut self, root: ProcessId) {
        let mut doomed: Vec<ProcessId> = Vec::new();
        for i in 0..self.processes.len() {
            if !self.processes[i].alive || i == root.0 as usize {
                continue;
            }
            let mut cur = i;
            while let Some(p) = self.processes[cur].parent {
                cur = p.0 as usize;
            }
            if cur == root.0 as usize {
                doomed.push(ProcessId(i as u32));
            }
        }
        let mut dead = vec![false; self.processes.len()];
        for pid in &doomed {
            dead[pid.0 as usize] = true;
        }
        for pid in doomed {
            let idx = pid.0 as usize;
            if let Some(mut proc_) = self.processes[idx].proc_.take() {
                let mut effects = Effects::default();
                let mut next_pid = self.processes.len() as u32;
                let mut ctx = Ctx {
                    core: &mut self.core,
                    pid,
                    next_pid: &mut next_pid,
                    effects: &mut effects,
                };
                proc_.abort(&mut ctx);
                // Effects issued during abort are deliberately dropped.
            }
            self.processes[idx].alive = false;
        }
        let orphaned: Vec<u64> = self
            .core
            .flows
            .iter()
            .filter(|(_, f)| f.owner.is_some_and(|o| dead[o.0 as usize]))
            .map(|(_, f)| f.id)
            .collect();
        for id in orphaned {
            self.core.cancel_flow_inner(id);
        }
    }

    /// Convenience: run a single bulk transfer and report its timing.
    pub fn run_transfer(&mut self, req: TransferRequest) -> NetResult<TransferReport> {
        let bytes = req.spec.bytes;
        let v = self.run_process(Box::new(OneShotTransfer {
            spec: Some(req.spec),
            started: SimTime::ZERO,
        }))?;
        match v {
            Value::Time(t) => Ok(TransferReport { bytes, elapsed: t }),
            Value::Error(e) => Err(e),
            other => panic!("unexpected transfer result {other:?}"),
        }
    }

    fn dispatch(&mut self, kind: EventKind, root: ProcessId) {
        match kind {
            EventKind::Activate { flow, slot } => {
                // The flow may have been cancelled during its startup delay
                // (slot empty or reused — the id check covers both).
                let now = self.core.now;
                let known = match self.core.flows.get_mut(slot) {
                    Some(f) if f.id == flow => {
                        f.active = true;
                        f.progress.started = now;
                        // Re-anchor at activation (a no-op for `remaining`:
                        // the pre-activation rate is zero).
                        f.progress.settle(now);
                        true
                    }
                    _ => false,
                };
                if known {
                    if self.core.progress_mode == ProgressMode::Eager {
                        // Seed the stepped shadow ledger for this slot.
                        let rem = self
                            .core
                            .flows
                            .get(slot)
                            .expect("just seen")
                            .progress
                            .remaining;
                        if self.core.stepped.len() <= slot as usize {
                            self.core.stepped.resize(slot as usize + 1, 0.0);
                        }
                        self.core.stepped[slot as usize] = rem;
                    }
                    self.core.activate_flow(slot);
                }
            }
            EventKind::Drained { flow, slot, gen } => {
                if self.core.drain_is_live(flow, slot, gen) {
                    let (delay, alloc_slot) = {
                        let f = self.core.flows.get_mut(slot).expect("liveness checked");
                        f.progress.remaining = 0.0;
                        f.progress.updated_at = self.core.now;
                        f.active = false;
                        f.pending_drain = false;
                        let alloc_slot = f.alloc_slot;
                        f.alloc_slot = u32::MAX;
                        (f.path_delay, alloc_slot)
                    };
                    if self.core.tracing {
                        let now = self.core.now;
                        self.core.traces.entry(flow).or_default().push((now, 0.0));
                    }
                    self.core.deactivate_flow(alloc_slot);
                    self.core
                        .push(self.core.now + delay, EventKind::Delivered { flow, slot });
                } else {
                    // A superseded (or cancelled-flow) drain leaving the heap.
                    debug_assert!(self.core.stale_drains > 0, "stale drain accounted");
                    self.core.stale_drains = self.core.stale_drains.saturating_sub(1);
                }
            }
            EventKind::Delivered { flow, slot } => {
                let known = matches!(self.core.flows.get(slot), Some(f) if f.id == flow);
                if known {
                    let f = self.core.flows.remove(slot).expect("checked above");
                    self.core.flow_index.remove(&flow);
                    self.core.stats.flows_completed += 1;
                    self.core.stats.bytes_delivered += f.total_bytes;
                    if let Some(hook) = self.audit.as_mut() {
                        hook.flow_delivered(flow, f.total_bytes, self.core.now);
                    }
                    let now_ns = self.core.now.as_nanos();
                    self.core.tele.span_end(now_ns, f.span);
                    self.core
                        .tele
                        .counter_add("netsim.bytes_delivered", f.total_bytes);
                    // Feed the streaming-aggregation plane: per-window
                    // flow-duration sketches and delivered-byte counts.
                    let dur_ns = self.core.now.saturating_sub(f.started_at).as_nanos();
                    self.core
                        .tele
                        .window_record(now_ns, "netsim.flow.duration_ns", dur_ns);
                    self.core.tele.window_count(
                        now_ns,
                        "netsim.flow.delivered_bytes",
                        f.total_bytes,
                    );
                    if let Some(owner) = f.owner {
                        let ev = Event::FlowCompleted {
                            flow: FlowId(flow),
                            bytes: f.total_bytes,
                            elapsed: self.core.now.saturating_sub(f.started_at),
                        };
                        self.deliver_root_aware(owner, ev, root);
                    }
                }
            }
            EventKind::Timer { pid, tag } => {
                self.deliver_root_aware(ProcessId(pid), Event::Timer { tag }, root);
            }
            EventKind::SetLinkCap {
                link,
                bytes_per_sec,
            } => {
                let now_ns = self.core.now.as_nanos();
                self.core
                    .tele
                    .event(now_ns, Category::Flow, "link.capacity", SpanId::NONE, |a| {
                        a.set("link", link).set("bytes_per_sec", bytes_per_sec);
                    });
                self.core.change_capacity(link, bytes_per_sec);
            }
        }
    }

    fn deliver_root_aware(&mut self, pid: ProcessId, ev: Event, root: ProcessId) {
        if let Some((finisher, v)) = self.deliver(pid, ev) {
            if finisher == root {
                self.root_result = Some(v);
            }
            // Otherwise a detached process finished; its result is discarded.
        }
    }

    fn deliver_root(&mut self, pid: ProcessId, ev: Event) {
        if let Some((finisher, v)) = self.deliver(pid, ev) {
            if finisher == pid {
                self.root_result = Some(v);
            }
        }
    }

    /// Deliver an event to a process. If the event causes some *parentless*
    /// process (this one, or an ancestor reached through `ChildDone`
    /// notifications) to finish, returns that process and its value.
    fn deliver(&mut self, pid: ProcessId, ev: Event) -> Option<(ProcessId, Value)> {
        let idx = pid.0 as usize;
        if idx >= self.processes.len() || !self.processes[idx].alive {
            return None; // late event for a dead process
        }
        let mut proc_ = self.processes[idx].proc_.take()?;
        let mut effects = Effects::default();
        let mut next_pid = self.processes.len() as u32;
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                pid,
                next_pid: &mut next_pid,
                effects: &mut effects,
            };
            proc_.poll(&mut ctx, ev);
        }
        // Reserve slots for spawned children before re-inserting.
        while self.processes.len() < next_pid as usize {
            self.processes.push(ProcSlot {
                proc_: None,
                parent: None,
                alive: false,
            });
        }
        let finished = effects.finished.take();
        if finished.is_none() {
            self.processes[idx].proc_ = Some(proc_);
        } else {
            self.processes[idx].alive = false;
        }
        // Start spawned children (may themselves spawn; recursion is bounded
        // by protocol depth, which is small).
        // A synchronous child start can itself finish an ancestor (e.g. a
        // child that errors immediately); keep the first such result.
        let mut bubbled: Option<(ProcessId, Value)> = None;
        for (cpid, parent, child) in effects.spawned {
            let cidx = cpid.0 as usize;
            self.processes[cidx] = ProcSlot {
                proc_: Some(child),
                parent,
                alive: true,
            };
            if let Some(r) = self.deliver(cpid, Event::Started) {
                bubbled.get_or_insert(r);
            }
        }
        if let Some(v) = finished {
            match self.processes[idx].parent {
                Some(pp) => {
                    if let Some(r) = self.deliver(
                        pp,
                        Event::ChildDone {
                            child: pid,
                            value: v,
                        },
                    ) {
                        bubbled.get_or_insert(r);
                    }
                }
                None => {
                    bubbled.get_or_insert((pid, v));
                }
            }
        }
        bubbled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::topology::{LinkId, LinkParams, TopologyBuilder};
    use crate::units::{Bandwidth, MB};

    fn line_topo(mbps: f64) -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(49.0, -123.0));
        let c = b.host("c", GeoPoint::new(37.0, -122.0));
        b.duplex(
            a,
            c,
            LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(10)),
        );
        (b.build(), a, c)
    }

    #[test]
    fn single_transfer_time_close_to_ideal() {
        let (t, a, c) = line_topo(80.0); // 10 MB/s
        let mut sim = Sim::new(t, 1);
        let rep = sim
            .run_transfer(TransferRequest::new(a, c, 10 * MB))
            .unwrap();
        // Ideal fluid time is 1 s; slow start + propagation add a little.
        let s = rep.elapsed.as_secs_f64();
        assert!((1.0..1.5).contains(&s), "elapsed {s}");
        assert!(rep.throughput().mbps() < 80.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (t, a, c) = line_topo(8.0);
        let r1 = Sim::new(t.clone(), 7)
            .run_transfer(TransferRequest::new(a, c, MB))
            .unwrap();
        let r2 = Sim::new(t, 7)
            .run_transfer(TransferRequest::new(a, c, MB))
            .unwrap();
        assert_eq!(r1.elapsed, r2.elapsed);
    }

    #[test]
    fn zero_byte_transfer_rejected() {
        let (t, a, c) = line_topo(8.0);
        let mut sim = Sim::new(t, 1);
        let err = sim
            .core()
            .start_flow_inner(None, FlowSpec::new(a, c, 0, FlowClass::Commodity));
        assert_eq!(err.unwrap_err(), NetError::EmptyTransfer);
    }

    #[test]
    fn per_flow_policer_caps_throughput() {
        let (t, a, c) = line_topo(80.0);
        let mut sim = Sim::new(t, 1);
        sim.add_policer(Policer::per_flow(
            "police",
            LinkId(0),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(8.0), // 1 MB/s
        ));
        let rep = sim
            .run_transfer(TransferRequest::with_class(
                a,
                c,
                10 * MB,
                FlowClass::PlanetLab,
            ))
            .unwrap();
        let s = rep.elapsed.as_secs_f64();
        assert!(s > 9.5, "policed transfer took only {s}s");
        // An unmatched class is unaffected.
        let mut sim2 = Sim::new(line_topo(80.0).0, 1);
        sim2.add_policer(Policer::per_flow(
            "police",
            LinkId(0),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(8.0),
        ));
        let rep2 = sim2
            .run_transfer(TransferRequest::with_class(
                NodeId(0),
                NodeId(1),
                10 * MB,
                FlowClass::Research,
            ))
            .unwrap();
        assert!(rep2.elapsed.as_secs_f64() < 2.0);
    }

    #[test]
    fn firewall_blocks_flow() {
        let (t, a, c) = line_topo(10.0);
        let mut sim = Sim::new(t, 1);
        sim.add_firewall(FirewallRule::drop_class("fw", LinkId(0), FlowClass::Probe));
        let err = sim
            .core()
            .start_flow_inner(None, FlowSpec::new(a, c, MB, FlowClass::Probe));
        assert!(matches!(err, Err(NetError::Blocked { .. })));
    }

    #[test]
    fn two_concurrent_flows_share_link() {
        struct TwoFlows {
            a: NodeId,
            c: NodeId,
            done: u32,
            t0: SimTime,
            times: Vec<SimTime>,
        }
        impl Process for TwoFlows {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Started => {
                        self.t0 = ctx.now();
                        for _ in 0..2 {
                            ctx.start_flow(FlowSpec::new(
                                self.a,
                                self.c,
                                10 * MB,
                                FlowClass::Commodity,
                            ))
                            .unwrap();
                        }
                    }
                    Event::FlowCompleted { elapsed, .. } => {
                        self.done += 1;
                        self.times.push(elapsed);
                        if self.done == 2 {
                            let m = *self.times.iter().max().unwrap();
                            ctx.finish(Value::Time(m));
                        }
                    }
                    _ => {}
                }
            }
        }
        let (t, a, c) = line_topo(80.0); // alone: ~1s each
        let mut sim = Sim::new(t, 1);
        let v = sim
            .run_process(Box::new(TwoFlows {
                a,
                c,
                done: 0,
                t0: SimTime::ZERO,
                times: vec![],
            }))
            .unwrap();
        let total = v.expect_time().as_secs_f64();
        // Sharing: both finish around 2s (not 1s).
        assert!((1.9..2.6).contains(&total), "shared completion {total}");
    }

    #[test]
    fn weighted_flows_share_proportionally_end_to_end() {
        struct TwoWeighted {
            a: NodeId,
            c: NodeId,
            heavy: Option<FlowId>,
            heavy_time: Option<SimTime>,
            light_time: Option<SimTime>,
        }
        impl Process for TwoWeighted {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Started => {
                        self.heavy = Some(
                            ctx.start_flow(
                                FlowSpec::new(self.a, self.c, 30 * MB, FlowClass::Commodity)
                                    .with_weight(3.0)
                                    .reuse_connection(),
                            )
                            .unwrap(),
                        );
                        ctx.start_flow(
                            FlowSpec::new(self.a, self.c, 30 * MB, FlowClass::Commodity)
                                .with_weight(1.0)
                                .reuse_connection(),
                        )
                        .unwrap();
                    }
                    Event::FlowCompleted { flow, elapsed, .. } => {
                        if Some(flow) == self.heavy {
                            self.heavy_time = Some(elapsed);
                        } else {
                            self.light_time = Some(elapsed);
                        }
                        if let (Some(h), Some(l)) = (self.heavy_time, self.light_time) {
                            ctx.finish(Value::List(vec![Value::Time(h), Value::Time(l)]));
                        }
                    }
                    _ => {}
                }
            }
        }
        let (t, a, c) = line_topo(80.0); // 10 MB/s
        let mut sim = Sim::new(t, 1);
        let v = sim
            .run_process(Box::new(TwoWeighted {
                a,
                c,
                heavy: None,
                heavy_time: None,
                light_time: None,
            }))
            .unwrap();
        let items = v.expect_list();
        let heavy = items[0].expect_time().as_secs_f64();
        let light = items[1].expect_time().as_secs_f64();
        // Shared 3:1 on a 10 MB/s link: heavy ≈ 30/7.5 = 4 s; the light flow
        // gets 2.5 MB/s until then (10 MB done), then the full link:
        // ≈ 4 + 20/10 = 6 s.
        assert!((3.8..4.6).contains(&heavy), "heavy {heavy}");
        assert!((5.6..6.8).contains(&light), "light {light}");
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Process for Timers {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Started => {
                        ctx.set_timer(SimTime::from_millis(30), 3);
                        ctx.set_timer(SimTime::from_millis(10), 1);
                        ctx.set_timer(SimTime::from_millis(20), 2);
                    }
                    Event::Timer { tag } => {
                        self.fired.push(tag);
                        if self.fired.len() == 3 {
                            ctx.finish(Value::List(
                                self.fired.iter().map(|&t| Value::U64(t)).collect(),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        let (t, ..) = line_topo(10.0);
        let v = Sim::new(t, 1)
            .run_process(Box::new(Timers { fired: vec![] }))
            .unwrap();
        let tags: Vec<u64> = v.expect_list().iter().map(|v| v.expect_u64()).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn child_processes_report_to_parent() {
        struct Child;
        impl Process for Child {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                if let Event::Started = ev {
                    ctx.set_timer(SimTime::from_millis(5), 0);
                } else if let Event::Timer { .. } = ev {
                    ctx.finish(Value::U64(99));
                }
            }
        }
        struct Parent {
            child: Option<ProcessId>,
        }
        impl Process for Parent {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Started => {
                        self.child = Some(ctx.spawn(Box::new(Child)));
                    }
                    Event::ChildDone { child, value } => {
                        assert_eq!(Some(child), self.child);
                        ctx.finish(value);
                    }
                    _ => {}
                }
            }
        }
        let (t, ..) = line_topo(10.0);
        let v = Sim::new(t, 1)
            .run_process(Box::new(Parent { child: None }))
            .unwrap();
        assert_eq!(v, Value::U64(99));
    }

    #[test]
    fn event_budget_catches_livelock() {
        struct Livelock;
        impl Process for Livelock {
            fn poll(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
                ctx.set_timer(SimTime::from_nanos(1), 0);
            }
        }
        let (t, ..) = line_topo(10.0);
        let mut sim = Sim::new(t, 1);
        sim.set_event_budget(1000);
        let err = sim.run_process(Box::new(Livelock)).unwrap_err();
        assert!(matches!(err, NetError::EventBudgetExhausted { .. }));
    }

    #[test]
    fn no_result_on_deadlock() {
        struct Waits;
        impl Process for Waits {
            fn poll(&mut self, _ctx: &mut Ctx<'_>, _ev: Event) {}
        }
        let (t, ..) = line_topo(10.0);
        let err = Sim::new(t, 1).run_process(Box::new(Waits)).unwrap_err();
        assert_eq!(err, NetError::NoResult);
    }

    #[test]
    fn capacity_jitter_perturbs_times_but_stays_deterministic() {
        let (t, a, c) = line_topo(80.0);
        let run = |seed: u64, jitter: f64| {
            let mut sim = Sim::new(t.clone(), seed);
            if jitter > 0.0 {
                sim.set_capacity_jitter(jitter);
            }
            sim.run_transfer(TransferRequest::new(a, c, 10 * MB))
                .unwrap()
                .elapsed
        };
        let crisp = run(1, 0.0);
        // Jitter changes the time, differently per seed, reproducibly.
        let j1 = run(1, 0.05);
        let j2 = run(2, 0.05);
        assert_ne!(crisp, j1);
        assert_ne!(j1, j2);
        assert_eq!(j1, run(1, 0.05));
        // And stays within the jitter envelope (plus slow-start wiggle).
        let ratio = j1.as_secs_f64() / crisp.as_secs_f64();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn jitter_fraction_validated() {
        let (t, ..) = line_topo(10.0);
        Sim::new(t, 1).set_capacity_jitter(1.5);
    }

    #[test]
    fn flow_trace_integral_matches_bytes() {
        struct OneFlow {
            a: NodeId,
            c: NodeId,
            id: Option<FlowId>,
        }
        impl Process for OneFlow {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Started => {
                        self.id = Some(
                            ctx.start_flow(FlowSpec::new(
                                self.a,
                                self.c,
                                10 * MB,
                                FlowClass::Commodity,
                            ))
                            .unwrap(),
                        );
                    }
                    Event::FlowCompleted { flow, .. } => {
                        ctx.finish(Value::U64(flow.0));
                    }
                    _ => {}
                }
            }
        }
        let (t, a, c) = line_topo(80.0);
        let mut sim = Sim::new(t, 1);
        sim.enable_flow_tracing();
        // Competing flow so the traced flow's rate actually changes.
        sim.schedule_capacity_change(
            LinkId(0),
            SimTime::from_millis(400),
            Bandwidth::from_mbps(20.0),
        );
        let v = sim
            .run_process(Box::new(OneFlow { a, c, id: None }))
            .unwrap();
        let trace = sim
            .flow_trace(FlowId(v.expect_u64()))
            .expect("tracing enabled");
        assert!(!trace.is_empty());
        assert!(
            trace.points.len() >= 3,
            "rate change + drain expected: {trace:?}"
        );
        let integral = trace.total_bytes();
        let expected = (10 * MB) as f64;
        assert!(
            (integral - expected).abs() / expected < 0.01,
            "integral {integral} vs bytes {expected}"
        );
        // Sampling produces the requested number of buckets, all finite.
        let s = trace.sample(16);
        assert_eq!(s.len(), 16);
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
        // The rate dropped after the capacity change: early > late.
        assert!(s[0] > *s.last().unwrap(), "samples {s:?}");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let (t, a, c) = line_topo(10.0);
        let mut sim = Sim::new(t, 1);
        let _ = sim.run_transfer(TransferRequest::new(a, c, MB)).unwrap();
        assert!(sim.flow_trace(FlowId(1)).is_none());
    }

    #[test]
    fn capacity_change_mid_flow() {
        // 80 Mbps (10 MB/s) for the first second, then degraded to 8 Mbps:
        // a 20 MB transfer moves ~10 MB in the first second and crawls
        // through the remaining ~10 MB at 1 MB/s.
        let (t, a, c) = line_topo(80.0);
        let mut sim = Sim::new(t, 1);
        sim.schedule_capacity_change(LinkId(0), SimTime::from_secs(1), Bandwidth::from_mbps(8.0));
        let rep = sim
            .run_transfer(TransferRequest::new(a, c, 20 * MB))
            .unwrap();
        let s = rep.elapsed.as_secs_f64();
        assert!((9.0..13.0).contains(&s), "elapsed {s}");
        // And the reverse: a slow link that heals.
        let (t2, a2, c2) = line_topo(8.0);
        let mut sim2 = Sim::new(t2, 1);
        sim2.schedule_capacity_change(
            LinkId(0),
            SimTime::from_secs(1),
            Bandwidth::from_mbps(800.0),
        );
        let rep2 = sim2
            .run_transfer(TransferRequest::new(a2, c2, 20 * MB))
            .unwrap();
        let s2 = rep2.elapsed.as_secs_f64();
        assert!(s2 < 2.0, "healed link still slow: {s2}");
    }

    #[test]
    fn idle_path_rate_reflects_policers() {
        let (t, a, c) = line_topo(80.0);
        let mut sim = Sim::new(t, 1);
        sim.add_policer(Policer::per_flow(
            "p",
            LinkId(0),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(9.5),
        ));
        let pl = sim
            .core()
            .idle_path_rate(a, c, FlowClass::PlanetLab)
            .unwrap();
        let rs = sim
            .core()
            .idle_path_rate(a, c, FlowClass::Research)
            .unwrap();
        assert!((pl.mbps() - 9.5).abs() < 1e-9);
        assert!((rs.mbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_attribution() {
        let (t, a, c) = line_topo(80.0);
        let mut sim = Sim::new(t, 1);
        sim.add_policer(Policer::per_flow(
            "pw",
            LinkId(0),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(9.3),
        ));
        // PlanetLab: the policer binds.
        let b = sim.core().bottleneck(a, c, FlowClass::PlanetLab).unwrap();
        assert!(
            matches!(b.cause, BottleneckCause::Policer { ref name } if name == "pw"),
            "{b}"
        );
        assert!((b.rate.mbps() - 9.3).abs() < 1e-9);
        // Research: the link binds.
        let b = sim.core().bottleneck(a, c, FlowClass::Research).unwrap();
        assert!(matches!(b.cause, BottleneckCause::Link { .. }), "{b}");
        assert!(b.to_string().contains("link"));
    }

    #[test]
    fn bottleneck_tcp_ceiling_on_lossy_path() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(49.0, -123.0));
        let c = b.host("c", GeoPoint::new(40.0, -75.0));
        b.duplex(
            a,
            c,
            LinkParams::new(Bandwidth::from_mbps(1000.0), SimTime::from_millis(40)).with_loss(0.01),
        );
        let mut sim = Sim::new(b.build(), 1);
        let bn = sim.core().bottleneck(a, c, FlowClass::Commodity).unwrap();
        assert!(
            matches!(bn.cause, BottleneckCause::TcpCeiling { .. }),
            "{bn}"
        );
        assert!(bn.rate.mbps() < 10.0, "ceiling should be low: {bn}");
    }

    #[test]
    fn cancel_flow_releases_capacity() {
        struct CancelOne {
            a: NodeId,
            c: NodeId,
            victim: Option<FlowId>,
        }
        impl Process for CancelOne {
            fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match ev {
                    Event::Started => {
                        self.victim = Some(
                            ctx.start_flow(FlowSpec::new(
                                self.a,
                                self.c,
                                100 * MB,
                                FlowClass::Commodity,
                            ))
                            .unwrap(),
                        );
                        ctx.start_flow(FlowSpec::new(
                            self.a,
                            self.c,
                            10 * MB,
                            FlowClass::Commodity,
                        ))
                        .unwrap();
                        ctx.set_timer(SimTime::from_millis(500), 7);
                    }
                    Event::Timer { tag: 7 } => {
                        ctx.cancel_flow(self.victim.take().unwrap());
                    }
                    Event::FlowCompleted { elapsed, .. } => ctx.finish(Value::Time(elapsed)),
                    _ => {}
                }
            }
        }
        let (t, a, c) = line_topo(80.0);
        let mut sim = Sim::new(t, 1);
        let v = sim
            .run_process(Box::new(CancelOne { a, c, victim: None }))
            .unwrap();
        // With the 100 MB victim cancelled at 0.5 s, the 10 MB flow gets the
        // full link afterwards: finishes well under the 2 s a fair share
        // would need.
        let s = v.expect_time().as_secs_f64();
        assert!(s < 1.9, "completion {s}");
        assert_eq!(sim.stats().flows_completed, 1);
    }
}
