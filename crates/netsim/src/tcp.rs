//! TCP throughput model.
//!
//! The fluid flow layer shares link capacity max-min fairly, which models a
//! long-lived TCP flow *at equilibrium on a clean path*. Two corrections make
//! the model honest for WAN paths like the paper's:
//!
//! 1. **The Mathis ceiling**: a loss-limited TCP flow cannot exceed
//!    `MSS / (RTT * sqrt(p)) * C` regardless of link capacity. On the paper's
//!    lossy commodity paths (Purdue's congested peering) this — not the link
//!    rate — is the binding constraint.
//! 2. **Slow-start ramp**: a flow does not reach equilibrium instantly; the
//!    ramp costs roughly `RTT * log2(BDP / IW)`. For a 10 MB file on a
//!    60 ms path this is noticeable; for 100 MB it is noise. This term (plus
//!    per-request protocol overheads modelled in `cloudstore`) produces the
//!    file-size dependence in the paper's Figures 8 and 9.

use crate::time::SimTime;
use crate::units::Bandwidth;

/// Constants of the TCP model.
#[derive(Debug, Clone, Copy)]
pub struct TcpParams {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Mathis constant (~0.93 for periodic loss and delayed ACKs off).
    pub mathis_c: f64,
    /// Initial congestion window in segments (RFC 6928: 10).
    pub initial_window: u64,
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams {
            mss: 1460,
            mathis_c: 0.93,
            initial_window: 10,
        }
    }
}

impl TcpParams {
    /// Loss-limited throughput ceiling for a path with round-trip time `rtt`
    /// and end-to-end loss probability `loss`.
    ///
    /// Returns `None` when the path is lossless (no ceiling applies).
    pub fn mathis_ceiling(&self, rtt: SimTime, loss: f64) -> Option<Bandwidth> {
        assert!((0.0..1.0).contains(&loss), "loss out of range: {loss}");
        if loss <= 0.0 || rtt.is_zero() {
            return None;
        }
        let bytes_per_sec = self.mathis_c * self.mss as f64 / (rtt.as_secs_f64() * loss.sqrt());
        Some(Bandwidth::from_bytes_per_sec(bytes_per_sec))
    }

    /// Approximate time spent in slow-start before the flow reaches rate
    /// `equilibrium` on a path with round-trip time `rtt`.
    ///
    /// Doubling from the initial window until the window covers the
    /// bandwidth-delay product takes `log2(BDP / IW)` round trips.
    pub fn slow_start_delay(&self, rtt: SimTime, equilibrium: Bandwidth) -> SimTime {
        if rtt.is_zero() || equilibrium.bytes_per_sec() <= 0.0 {
            return SimTime::ZERO;
        }
        let bdp_segments = equilibrium.bytes_per_sec() * rtt.as_secs_f64() / self.mss as f64;
        if bdp_segments <= self.initial_window as f64 {
            // Window already covers the path after the handshake RTT.
            return rtt;
        }
        let rounds = (bdp_segments / self.initial_window as f64)
            .log2()
            .ceil()
            .max(1.0);
        // +1 RTT for the connection handshake itself.
        rtt.mul_f64(rounds + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_path_has_no_ceiling() {
        let t = TcpParams::default();
        assert!(t.mathis_ceiling(SimTime::from_millis(50), 0.0).is_none());
        assert!(t.mathis_ceiling(SimTime::ZERO, 0.01).is_none());
    }

    #[test]
    fn mathis_formula_value() {
        let t = TcpParams::default();
        // MSS 1460, RTT 100 ms, loss 1%: 0.93 * 1460 / (0.1 * 0.1) B/s = ~135.8 KB/s
        let bw = t.mathis_ceiling(SimTime::from_millis(100), 0.01).unwrap();
        let expected = 0.93 * 1460.0 / (0.1 * 0.1);
        assert!((bw.bytes_per_sec() - expected).abs() < 1.0);
    }

    #[test]
    fn ceiling_monotonic_in_loss_and_rtt() {
        let t = TcpParams::default();
        let rtt = SimTime::from_millis(50);
        let low_loss = t.mathis_ceiling(rtt, 0.001).unwrap();
        let high_loss = t.mathis_ceiling(rtt, 0.01).unwrap();
        assert!(low_loss > high_loss);
        let short = t.mathis_ceiling(SimTime::from_millis(10), 0.001).unwrap();
        assert!(short > low_loss);
    }

    #[test]
    fn slow_start_grows_with_bdp() {
        let t = TcpParams::default();
        let rtt = SimTime::from_millis(60);
        let slow = t.slow_start_delay(rtt, Bandwidth::from_mbps(10.0));
        let fast = t.slow_start_delay(rtt, Bandwidth::from_mbps(1000.0));
        assert!(fast > slow, "fast {fast} vs slow {slow}");
        // Should be a handful of RTTs, not seconds.
        assert!(fast < SimTime::from_secs(2));
        assert!(slow >= rtt);
    }

    #[test]
    fn slow_start_degenerate_cases() {
        let t = TcpParams::default();
        assert_eq!(
            t.slow_start_delay(SimTime::ZERO, Bandwidth::from_mbps(1.0)),
            SimTime::ZERO
        );
        assert_eq!(
            t.slow_start_delay(SimTime::from_millis(10), Bandwidth::ZERO),
            SimTime::ZERO
        );
        // Tiny BDP: one RTT (handshake only).
        let d = t.slow_start_delay(SimTime::from_millis(10), Bandwidth::from_kbps(64.0));
        assert_eq!(d, SimTime::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "loss out of range")]
    fn invalid_loss_panics() {
        TcpParams::default().mathis_ceiling(SimTime::from_millis(10), 1.5);
    }
}
