//! Request/response (RPC) sessions.
//!
//! Cloud-storage REST calls, OAuth2 token grants and rsync control exchanges
//! are all request/response: the client pushes a request body, the server
//! thinks, the server pushes a response body. [`Rpc`] is a [`Process`] that
//! performs one such exchange and finishes with the elapsed time, so
//! higher-level protocol state machines simply `spawn` it and wait for
//! [`Event::ChildDone`].

use crate::engine::{Ctx, Event, Process, Value};
use crate::flow::{FlowClass, FlowSpec};
use crate::time::SimTime;
use crate::topology::NodeId;

/// Parameters of a request/response exchange.
#[derive(Debug, Clone)]
pub struct RpcSpec {
    /// Requesting host.
    pub client: NodeId,
    /// Responding host.
    pub server: NodeId,
    /// Request payload (headers + body), bytes.
    pub request_bytes: u64,
    /// Response payload, bytes.
    pub response_bytes: u64,
    /// Server-side processing time between request arrival and response.
    pub server_time: SimTime,
    /// Traffic class of both directions.
    pub class: FlowClass,
    /// Whether the underlying connection is new (pays TCP slow start) or
    /// reused (no handshake). Upload sessions reuse one connection for all
    /// chunks; the first call of a session pays the handshake.
    pub fresh_connection: bool,
    /// Telemetry span name for this exchange ("rpc.auth", "rpc.part", ...).
    pub span_name: &'static str,
    /// Telemetry span this exchange nests under.
    pub parent_span: obs::SpanId,
}

impl RpcSpec {
    /// A small control RPC (512-byte request, 1 KiB response, 5 ms think).
    pub fn control(client: NodeId, server: NodeId, class: FlowClass) -> Self {
        RpcSpec {
            client,
            server,
            request_bytes: 512,
            response_bytes: 1024,
            server_time: SimTime::from_millis(5),
            class,
            fresh_connection: false,
            span_name: "rpc",
            parent_span: obs::SpanId::NONE,
        }
    }

    /// Set payload sizes.
    pub fn with_payload(mut self, request: u64, response: u64) -> Self {
        self.request_bytes = request.max(1);
        self.response_bytes = response.max(1);
        self
    }

    /// Set the server think time.
    pub fn with_server_time(mut self, t: SimTime) -> Self {
        self.server_time = t;
        self
    }

    /// Mark the connection as fresh (pays slow start on the request leg).
    pub fn fresh(mut self) -> Self {
        self.fresh_connection = true;
        self
    }

    /// Name the telemetry span for this exchange and nest it under
    /// `parent` (the session or chunk issuing the call).
    pub fn traced(mut self, span_name: &'static str, parent: obs::SpanId) -> Self {
        self.span_name = span_name;
        self.parent_span = parent;
        self
    }
}

enum RpcState {
    Idle,
    Requesting,
    Thinking,
    Responding,
}

/// A process performing one request/response exchange.
///
/// Finishes with `Value::Time(elapsed)`.
pub struct Rpc {
    spec: RpcSpec,
    state: RpcState,
    started: SimTime,
    span: obs::SpanId,
}

impl Rpc {
    /// Build from a spec.
    pub fn new(spec: RpcSpec) -> Self {
        Rpc {
            spec,
            state: RpcState::Idle,
            started: SimTime::ZERO,
            span: obs::SpanId::NONE,
        }
    }
}

const THINK_TIMER: u64 = 0x5256_5043; // "RPC" think-phase tag

impl Process for Rpc {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match (&self.state, ev) {
            (RpcState::Idle, Event::Started) => {
                self.started = ctx.now();
                let (t_ns, name, parent) = (
                    ctx.now().as_nanos(),
                    self.spec.span_name,
                    self.spec.parent_span,
                );
                let (req, resp, fresh) = (
                    self.spec.request_bytes,
                    self.spec.response_bytes,
                    self.spec.fresh_connection,
                );
                self.span =
                    ctx.telemetry()
                        .span_begin_with(t_ns, obs::Category::Rpc, name, parent, |a| {
                            a.set("request_bytes", req)
                                .set("response_bytes", resp)
                                .set("fresh_connection", fresh);
                        });
                ctx.telemetry().counter_add("netsim.rpcs", 1);
                let mut spec = FlowSpec::new(
                    self.spec.client,
                    self.spec.server,
                    self.spec.request_bytes,
                    self.spec.class,
                )
                .with_parent_span(self.span);
                if !self.spec.fresh_connection {
                    spec = spec.reuse_connection();
                }
                match ctx.start_flow(spec) {
                    Ok(_) => self.state = RpcState::Requesting,
                    Err(e) => {
                        let t = ctx.now().as_nanos();
                        ctx.telemetry().span_end(t, self.span);
                        ctx.finish(Value::Error(e))
                    }
                }
            }
            (RpcState::Requesting, Event::FlowCompleted { .. }) => {
                self.state = RpcState::Thinking;
                ctx.set_timer(self.spec.server_time, THINK_TIMER);
            }
            (RpcState::Thinking, Event::Timer { tag: THINK_TIMER }) => {
                let spec = FlowSpec::new(
                    self.spec.server,
                    self.spec.client,
                    self.spec.response_bytes,
                    self.spec.class,
                )
                .reuse_connection()
                .with_parent_span(self.span);
                match ctx.start_flow(spec) {
                    Ok(_) => self.state = RpcState::Responding,
                    Err(e) => {
                        let t = ctx.now().as_nanos();
                        ctx.telemetry().span_end(t, self.span);
                        ctx.finish(Value::Error(e))
                    }
                }
            }
            (RpcState::Responding, Event::FlowCompleted { .. }) => {
                let t = ctx.now().as_nanos();
                ctx.telemetry().span_end(t, self.span);
                ctx.finish(Value::Time(ctx.now().saturating_sub(self.started)));
            }
            (_, Event::FlowFailed { error, .. }) => {
                let t = ctx.now().as_nanos();
                ctx.telemetry().span_end(t, self.span);
                ctx.finish(Value::Error(error))
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "rpc"
    }

    fn abort(&mut self, ctx: &mut Ctx<'_>) {
        // Abandoned mid-exchange (the session above us failed): close the
        // rpc span so traces stay balanced. Our in-flight flow is cancelled
        // by the engine right after this callback.
        if !matches!(self.state, RpcState::Idle) {
            let t = ctx.now().as_nanos();
            ctx.telemetry().span_end(t, self.span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::geo::GeoPoint;
    use crate::topology::{LinkParams, TopologyBuilder};
    use crate::units::Bandwidth;

    fn pair() -> (crate::topology::Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("client", GeoPoint::new(49.0, -123.0));
        let s = b.host("server", GeoPoint::new(37.0, -122.0));
        b.duplex(
            a,
            s,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(20)),
        );
        (b.build(), a, s)
    }

    #[test]
    fn rpc_elapsed_includes_rtt_and_think_time() {
        let (t, a, s) = pair();
        let mut sim = Sim::new(t, 1);
        let spec =
            RpcSpec::control(a, s, FlowClass::Commodity).with_server_time(SimTime::from_millis(50));
        let v = sim.run_process(Box::new(Rpc::new(spec))).unwrap();
        let elapsed = v.expect_time();
        // One-way delay 20 ms each way + 50 ms think = at least 90 ms.
        assert!(elapsed >= SimTime::from_millis(90), "elapsed {elapsed}");
        assert!(elapsed < SimTime::from_millis(200), "elapsed {elapsed}");
    }

    #[test]
    fn fresh_connection_is_slower() {
        let (t, a, s) = pair();
        let reused = Sim::new(t.clone(), 1)
            .run_process(Box::new(Rpc::new(RpcSpec::control(
                a,
                s,
                FlowClass::Commodity,
            ))))
            .unwrap()
            .expect_time();
        let fresh = Sim::new(t, 1)
            .run_process(Box::new(Rpc::new(
                RpcSpec::control(a, s, FlowClass::Commodity).fresh(),
            )))
            .unwrap()
            .expect_time();
        assert!(fresh > reused, "fresh {fresh} vs reused {reused}");
    }

    #[test]
    fn payload_size_matters() {
        let (t, a, s) = pair();
        let small = Sim::new(t.clone(), 1)
            .run_process(Box::new(Rpc::new(
                RpcSpec::control(a, s, FlowClass::Commodity).with_payload(1024, 1024),
            )))
            .unwrap()
            .expect_time();
        let big = Sim::new(t, 1)
            .run_process(Box::new(Rpc::new(
                RpcSpec::control(a, s, FlowClass::Commodity).with_payload(10_000_000, 1024),
            )))
            .unwrap()
            .expect_time();
        assert!(big > small * 2, "big {big} vs small {small}");
    }

    #[test]
    fn rpc_error_propagates() {
        // Server unreachable: only a reverse link exists.
        let mut b = TopologyBuilder::new();
        let a = b.host("client", GeoPoint::new(0.0, 0.0));
        let s = b.host("server", GeoPoint::new(1.0, 1.0));
        b.simplex(
            s,
            a,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1)),
        );
        let mut sim = Sim::new(b.build(), 1);
        let v = sim
            .run_process(Box::new(Rpc::new(RpcSpec::control(
                a,
                s,
                FlowClass::Commodity,
            ))))
            .unwrap();
        assert!(matches!(
            v,
            Value::Error(crate::error::NetError::NoRoute { .. })
        ));
    }
}
