//! Geography: great-circle distances and propagation delays.
//!
//! The paper's Figure 3 plots clients, intermediate nodes and provider
//! datacenters on a map of North America and argues that *geographic
//! proximity does not predict throughput*. We keep real coordinates on every
//! node so that (a) link propagation delays default to speed-of-light values
//! and (b) the Figure 3 / Table V reproductions can print actual distances
//! and detour "backtracking" factors.

use crate::time::SimTime;
use std::fmt;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Signal propagation speed in fibre, as a fraction of c (~0.67c), in km/s.
pub const FIBRE_KM_PER_SEC: f64 = 200_000.0;

/// A point on the Earth's surface (degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Construct a point; panics on out-of-range coordinates.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to another point, in kilometres.
    ///
    /// ```
    /// use netsim::geo::places;
    /// let km = places::UBC.distance_km(&places::SEATTLE);
    /// assert!((150.0..250.0).contains(&km)); // Vancouver–Seattle ≈ 200 km
    /// ```
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// One-way fibre propagation delay to another point.
    ///
    /// Real paths are never the geodesic; a route-inflation factor of 1.4 is
    /// applied, consistent with published fibre-vs-geodesic measurements.
    pub fn propagation_delay(&self, other: &GeoPoint) -> SimTime {
        const ROUTE_INFLATION: f64 = 1.4;
        let km = self.distance_km(other) * ROUTE_INFLATION;
        SimTime::from_secs_f64(km / FIBRE_KM_PER_SEC)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon >= 0.0 { 'E' } else { 'W' };
        write!(f, "{:.2}°{ns} {:.2}°{ew}", self.lat.abs(), self.lon.abs())
    }
}

/// Well-known locations used by the paper (Figure 3).
pub mod places {
    use super::GeoPoint;

    /// University of British Columbia, Vancouver BC (PlanetLab client).
    pub const UBC: GeoPoint = GeoPoint {
        lat: 49.261,
        lon: -123.246,
    };
    /// University of Alberta, Edmonton AB (non-PlanetLab DTN).
    pub const UALBERTA: GeoPoint = GeoPoint {
        lat: 53.523,
        lon: -113.526,
    };
    /// University of Michigan, Ann Arbor MI (PlanetLab DTN).
    pub const UMICH: GeoPoint = GeoPoint {
        lat: 42.278,
        lon: -83.738,
    };
    /// Purdue University, West Lafayette IN (PlanetLab client).
    pub const PURDUE: GeoPoint = GeoPoint {
        lat: 40.424,
        lon: -86.929,
    };
    /// UCLA, Los Angeles CA (PlanetLab client).
    pub const UCLA: GeoPoint = GeoPoint {
        lat: 34.069,
        lon: -118.445,
    };
    /// Google Drive datacenter, Mountain View CA.
    pub const MOUNTAIN_VIEW: GeoPoint = GeoPoint {
        lat: 37.389,
        lon: -122.084,
    };
    /// Dropbox datacenter, Ashburn VA.
    pub const ASHBURN: GeoPoint = GeoPoint {
        lat: 39.044,
        lon: -77.488,
    };
    /// Microsoft OneDrive datacenter, Seattle WA.
    pub const SEATTLE: GeoPoint = GeoPoint {
        lat: 47.606,
        lon: -122.332,
    };
    /// Vancouver exchange point (CANARIE `vncv1rtr2`, pacificwave).
    pub const VANCOUVER_IX: GeoPoint = GeoPoint {
        lat: 49.283,
        lon: -123.117,
    };
    /// Chicago exchange (Internet2/commodity peering for the midwest).
    pub const CHICAGO_IX: GeoPoint = GeoPoint {
        lat: 41.879,
        lon: -87.636,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = GeoPoint::new(49.0, -123.0);
        assert!(p.distance_km(&p) < 1e-9);
        assert_eq!(p.propagation_delay(&p), SimTime::ZERO);
    }

    #[test]
    fn known_distance_vancouver_edmonton() {
        // UBC to UAlberta is ~820 km great-circle.
        let d = places::UBC.distance_km(&places::UALBERTA);
        assert!((750.0..900.0).contains(&d), "distance was {d}");
    }

    #[test]
    fn detour_is_geographic_backtracking() {
        // The paper's point: UBC -> UAlberta -> Mountain View is a large
        // geographic detour versus UBC -> Mountain View.
        let direct = places::UBC.distance_km(&places::MOUNTAIN_VIEW);
        let detour = places::UBC.distance_km(&places::UALBERTA)
            + places::UALBERTA.distance_km(&places::MOUNTAIN_VIEW);
        assert!(detour > 1.5 * direct, "detour {detour} vs direct {direct}");
    }

    #[test]
    fn propagation_delay_scales_with_distance() {
        let short = places::UBC.propagation_delay(&places::SEATTLE);
        let long = places::UBC.propagation_delay(&places::ASHBURN);
        assert!(long > short * 5);
        // Cross-continent one-way delay should be tens of milliseconds.
        assert!(
            long > SimTime::from_millis(20) && long < SimTime::from_millis(50),
            "delay {long}"
        );
    }

    #[test]
    fn symmetry() {
        let a = places::PURDUE;
        let b = places::SEATTLE;
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn bad_latitude_panics() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(places::UBC.to_string(), "49.26°N 123.25°W");
    }
}
