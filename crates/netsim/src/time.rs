//! Simulated time.
//!
//! Time is kept as integer nanoseconds so that the event queue has an exact
//! total order and identical seeds replay identically on every platform.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a duration), in nanoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant, used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding up to the next nanosecond.
    ///
    /// Rounding *up* guarantees that a flow transferring at rate `r` for
    /// `from_secs_f64(bytes / r)` has moved at least `bytes` bytes, so
    /// completion events never fire early.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime((s * 1e9).ceil() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// True when this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale a duration by a dimensionless factor (used for jitter).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimTime {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimTime((self.0 as f64 * k).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns worth of seconds must round to 2 ns, never down to 1.
        let t = SimTime::from_secs_f64(1.5e-9);
        assert_eq!(t.as_nanos(), 2);
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(a * 2, SimTime::from_secs(6));
        assert_eq!(a / 3, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(b), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_nanos(7).to_string(), "7ns");
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total, SimTime::from_secs(6));
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
    }

    #[test]
    fn mul_f64_jitter() {
        let base = SimTime::from_millis(100);
        assert_eq!(base.mul_f64(1.5), SimTime::from_millis(150));
        assert_eq!(base.mul_f64(0.0), SimTime::ZERO);
    }
}
