//! Data-size and bandwidth units.
//!
//! All internal rate arithmetic is done in **bytes per second** (`f64`);
//! [`Bandwidth`] exists so that public APIs and scenario definitions read in
//! the units the paper uses (megabits per second) without unit confusion.

use std::fmt;
use std::ops::{Add, Div, Mul};

/// One kilobyte (10^3 bytes, matching `dd` and the paper's file sizes).
pub const KB: u64 = 1_000;
/// One megabyte (10^6 bytes).
pub const MB: u64 = 1_000 * KB;
/// One gigabyte (10^9 bytes).
pub const GB: u64 = 1_000 * MB;

/// One kibibyte, used by chunk-alignment rules in the cloud APIs.
pub const KIB: u64 = 1_024;
/// One mebibyte.
pub const MIB: u64 = 1_024 * KIB;

/// A transfer rate.
///
/// Stored as bytes/second; constructors and accessors exist for both
/// bit-oriented (network) and byte-oriented (file) views.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// The zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From bits per second.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth: {bps}");
        Bandwidth(bps / 8.0)
    }

    /// From kilobits per second.
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// From megabits per second — the unit used throughout the scenario
    /// calibration tables.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// From gigabits per second.
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// From bytes per second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth: {bps}");
        Bandwidth(bps)
    }

    /// Bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Bits per second.
    #[inline]
    pub fn bps(self) -> f64 {
        self.0 * 8.0
    }

    /// Megabits per second.
    #[inline]
    pub fn mbps(self) -> f64 {
        self.bps() / 1e6
    }

    /// Time to move `bytes` at this rate. Panics if the rate is zero.
    #[inline]
    pub fn time_for(self, bytes: u64) -> crate::time::SimTime {
        assert!(self.0 > 0.0, "cannot transfer over a zero-rate channel");
        crate::time::SimTime::from_secs_f64(bytes as f64 / self.0)
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, rhs: f64) -> Bandwidth {
        assert!(rhs.is_finite() && rhs >= 0.0);
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn div(self, rhs: f64) -> Bandwidth {
        assert!(rhs.is_finite() && rhs > 0.0);
        Bandwidth(self.0 / rhs)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.bps();
        if bps >= 1e9 {
            write!(f, "{:.2} Gbps", bps / 1e9)
        } else if bps >= 1e6 {
            write!(f, "{:.2} Mbps", bps / 1e6)
        } else if bps >= 1e3 {
            write!(f, "{:.2} Kbps", bps / 1e3)
        } else {
            write!(f, "{bps:.0} bps")
        }
    }
}

/// Human-readable byte count (for table rendering).
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GB {
        format!("{:.2} GB", bytes as f64 / GB as f64)
    } else if bytes >= MB {
        format!("{:.0} MB", bytes as f64 / MB as f64)
    } else if bytes >= KB {
        format!("{:.0} KB", bytes as f64 / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn unit_conversions() {
        let b = Bandwidth::from_mbps(8.0);
        assert!((b.bytes_per_sec() - 1e6).abs() < 1e-9);
        assert!((b.bps() - 8e6).abs() < 1e-9);
        assert!((b.mbps() - 8.0).abs() < 1e-12);
        assert_eq!(Bandwidth::from_kbps(1000.0), Bandwidth::from_mbps(1.0));
        assert_eq!(Bandwidth::from_gbps(1.0), Bandwidth::from_mbps(1000.0));
    }

    #[test]
    fn time_for_bytes() {
        // 1 MB over 8 Mbps (1 MB/s) takes one second.
        let b = Bandwidth::from_mbps(8.0);
        assert_eq!(b.time_for(MB), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_transfer_panics() {
        Bandwidth::ZERO.time_for(1);
    }

    #[test]
    fn arithmetic_and_min() {
        let a = Bandwidth::from_mbps(10.0);
        let b = Bandwidth::from_mbps(4.0);
        assert_eq!(a.min(b), b);
        assert_eq!((a + b).mbps().round(), 14.0);
        assert_eq!((a * 0.5).mbps().round(), 5.0);
        assert_eq!((a / 2.0).mbps().round(), 5.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_mbps(9.5).to_string(), "9.50 Mbps");
        assert_eq!(Bandwidth::from_gbps(2.0).to_string(), "2.00 Gbps");
        assert_eq!(format_bytes(10 * MB), "10 MB");
        assert_eq!(format_bytes(1536), "2 KB");
        assert_eq!(format_bytes(12), "12 B");
    }

    #[test]
    fn kib_alignment_constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(320 * KIB, 327_680); // OneDrive fragment alignment
    }
}
