//! Network topology: nodes, directed links and the builder API.
//!
//! A topology is immutable once built; the simulator shares it read-only
//! between runs (a measurement campaign constructs one topology and many
//! [`crate::engine::Sim`] instances over it).

use crate::geo::GeoPoint;
use crate::time::SimTime;
use crate::units::Bandwidth;
use std::collections::HashMap;
use std::fmt;

/// Identifies a node. Indexes into [`Topology::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a directed link. Indexes into [`Topology::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// What a node is; affects traceroute rendering and default behaviour only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (client machine, DTN, or storage frontend).
    Host,
    /// An interior router.
    Router,
    /// An exchange / peering point (e.g. pacificwave).
    Exchange,
    /// A provider datacenter ingress.
    Datacenter,
}

/// A node in the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// Stable identifier.
    pub id: NodeId,
    /// Human-readable name ("ubc-planetlab", "vncv1rtr2.canarie.ca").
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
    /// Geographic position (drives default propagation delays and Figure 3).
    pub location: GeoPoint,
    /// Autonomous-system number, used by routing policy and traceroute.
    pub asn: u32,
    /// IPv4 address advertised in traceroutes.
    pub ip: [u8; 4],
    /// Nodes that do not answer traceroute probes render as `* * *`
    /// (the paper's Figure 6 shows such hops inside UAlberta).
    pub anonymous: bool,
}

impl Node {
    /// Dotted-quad IPv4 string.
    pub fn ip_string(&self) -> String {
        let [a, b, c, d] = self.ip;
        format!("{a}.{b}.{c}.{d}")
    }
}

/// Link parameters supplied at build time.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Capacity of the link.
    pub capacity: Bandwidth,
    /// One-way propagation delay. `None` derives it from endpoint geography.
    pub delay: Option<SimTime>,
    /// Packet loss probability in [0, 1); feeds the TCP throughput ceiling.
    pub loss: f64,
    /// Routing cost; lower is preferred. Defaults to 10.
    pub cost: u32,
}

impl LinkParams {
    /// A clean link with explicit delay, no loss, default cost.
    pub fn new(capacity: Bandwidth, delay: SimTime) -> Self {
        LinkParams {
            capacity,
            delay: Some(delay),
            loss: 0.0,
            cost: 10,
        }
    }

    /// A link whose delay is derived from endpoint geography.
    pub fn geo(capacity: Bandwidth) -> Self {
        LinkParams {
            capacity,
            delay: None,
            loss: 0.0,
            cost: 10,
        }
    }

    /// Set the loss rate.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss out of range: {loss}");
        self.loss = loss;
        self
    }

    /// Set the routing cost.
    pub fn with_cost(mut self, cost: u32) -> Self {
        self.cost = cost;
        self
    }
}

/// A directed link between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    /// Stable identifier.
    pub id: LinkId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Capacity shared max-min fairly by the flows crossing this link.
    pub capacity: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Packet loss probability in [0, 1).
    pub loss: f64,
    /// Routing cost.
    pub cost: u32,
}

/// Flat compressed-sparse-row adjacency: one `offsets` array of length
/// `nodes + 1` and three parallel arc arrays of length `links`. The arcs of
/// node `u` occupy `offsets[u]..offsets[u+1]`, in link-id order — the same
/// order the old nested `Vec<Vec<LinkId>>` adjacency produced, so iteration
/// order (and therefore every tie-broken route) is unchanged. The payoff is
/// locality: a shortest-path sweep touches three dense arrays instead of
/// chasing one heap-allocated `Vec` per node, and `cost` rides alongside the
/// target so the relaxation loop never dereferences a `Link`.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    costs: Vec<u32>,
    link_ids: Vec<LinkId>,
}

impl Csr {
    /// Counting-sort `(bucket, target, cost, link)` arcs into CSR form.
    /// Arcs must arrive in link-id order so each bucket stays link-sorted.
    fn build(n: usize, arcs: impl Iterator<Item = (u32, u32, u32, LinkId)> + Clone) -> Csr {
        let mut offsets = vec![0u32; n + 1];
        for (bucket, ..) in arcs.clone() {
            offsets[bucket as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let m = *offsets.last().unwrap_or(&0) as usize;
        let mut targets = vec![0u32; m];
        let mut costs = vec![0u32; m];
        let mut link_ids = vec![LinkId(0); m];
        let mut cursor = offsets.clone();
        for (bucket, target, cost, link) in arcs {
            let at = cursor[bucket as usize] as usize;
            targets[at] = target;
            costs[at] = cost;
            link_ids[at] = link;
            cursor[bucket as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            costs,
            link_ids,
        }
    }

    /// Number of nodes this CSR was built over.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// The arc index range of node `u`.
    #[inline]
    pub fn range(&self, u: u32) -> std::ops::Range<usize> {
        self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize
    }

    /// Target node ids of `u`'s arcs.
    #[inline]
    pub fn targets(&self, u: u32) -> &[u32] {
        &self.targets[self.range(u)]
    }

    /// Costs parallel to [`Csr::targets`].
    #[inline]
    pub fn costs(&self, u: u32) -> &[u32] {
        &self.costs[self.range(u)]
    }

    /// Link ids parallel to [`Csr::targets`].
    #[inline]
    pub fn link_ids(&self, u: u32) -> &[LinkId] {
        &self.link_ids[self.range(u)]
    }

    /// Iterate `(target, cost, link)` arcs of `u` in link-id order.
    #[inline]
    pub fn arcs(&self, u: u32) -> impl Iterator<Item = (u32, u32, LinkId)> + '_ {
        let r = self.range(u);
        self.targets[r.clone()]
            .iter()
            .zip(&self.costs[r.clone()])
            .zip(&self.link_ids[r])
            .map(|((&t, &c), &l)| (t, c, l))
    }
}

/// An immutable network topology.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Forward CSR: arcs bucketed by `from`, link-id order within a node.
    csr: Csr,
    /// Reverse CSR: the same links bucketed by `to` (targets are the `from`
    /// endpoints), used for reverse shortest-path trees in detour queries.
    rcsr: Csr,
    /// (from, to) -> link id for O(1) lookup when validating explicit paths.
    edge_index: HashMap<(NodeId, NodeId), LinkId>,
    name_index: HashMap<String, NodeId>,
}

impl Topology {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node by id. Panics on out-of-range ids (they can only be forged).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// True if `id` names a real node.
    pub fn contains(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len()
    }

    /// Look a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Outgoing links of a node, in link-id order.
    pub fn outgoing(&self, id: NodeId) -> &[LinkId] {
        self.csr.link_ids(id.0)
    }

    /// The forward CSR adjacency (arcs bucketed by source).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The reverse CSR adjacency (arcs bucketed by destination; a reverse
    /// arc's target is the link's `from` endpoint).
    pub fn reverse_csr(&self) -> &Csr {
        &self.rcsr
    }

    /// The directed link between two adjacent nodes, if any.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.edge_index.get(&(from, to)).copied()
    }

    /// Convert a node path to the list of links joining it, validating
    /// adjacency.
    pub fn links_on_path(&self, path: &[NodeId]) -> Result<Vec<LinkId>, crate::error::NetError> {
        let mut out = Vec::with_capacity(path.len().saturating_sub(1));
        for w in path.windows(2) {
            match self.link_between(w[0], w[1]) {
                Some(l) => out.push(l),
                None => {
                    return Err(crate::error::NetError::BrokenPath {
                        from: w[0],
                        to: w[1],
                    })
                }
            }
        }
        Ok(out)
    }

    /// Sum of propagation delays along a node path (one way).
    pub fn path_delay(&self, path: &[NodeId]) -> SimTime {
        self.links_on_path(path)
            .map(|ls| ls.iter().map(|&l| self.link(l).delay).sum())
            .unwrap_or(SimTime::ZERO)
    }

    /// Combined loss probability along a node path.
    pub fn path_loss(&self, links: &[LinkId]) -> f64 {
        1.0 - links
            .iter()
            .map(|&l| 1.0 - self.link(l).loss)
            .product::<f64>()
    }

    /// Minimum capacity along a path of links.
    pub fn path_capacity(&self, links: &[LinkId]) -> Bandwidth {
        links
            .iter()
            .map(|&l| self.link(l).capacity)
            .fold(Bandwidth::from_gbps(1e6), Bandwidth::min)
    }
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    next_ip: u32,
}

impl TopologyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
            next_ip: 0x0a_00_00_01,
        }
    }

    fn alloc_ip(&mut self) -> [u8; 4] {
        let ip = self.next_ip;
        self.next_ip += 1;
        ip.to_be_bytes()
    }

    /// Add a node with full control over its attributes.
    pub fn node(&mut self, name: &str, kind: NodeKind, location: GeoPoint) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let ip = self.alloc_ip();
        self.nodes.push(Node {
            id,
            name: name.to_string(),
            kind,
            location,
            asn: 0,
            ip,
            anonymous: false,
        });
        id
    }

    /// Add an end host.
    pub fn host(&mut self, name: &str, location: GeoPoint) -> NodeId {
        self.node(name, NodeKind::Host, location)
    }

    /// Add an interior router.
    pub fn router(&mut self, name: &str, location: GeoPoint) -> NodeId {
        self.node(name, NodeKind::Router, location)
    }

    /// Add an exchange point.
    pub fn exchange(&mut self, name: &str, location: GeoPoint) -> NodeId {
        self.node(name, NodeKind::Exchange, location)
    }

    /// Add a datacenter ingress.
    pub fn datacenter(&mut self, name: &str, location: GeoPoint) -> NodeId {
        self.node(name, NodeKind::Datacenter, location)
    }

    /// Set the AS number of a node.
    pub fn set_asn(&mut self, node: NodeId, asn: u32) -> &mut Self {
        self.nodes[node.0 as usize].asn = asn;
        self
    }

    /// Override the auto-assigned IP of a node (for traceroute fidelity).
    pub fn set_ip(&mut self, node: NodeId, ip: [u8; 4]) -> &mut Self {
        self.nodes[node.0 as usize].ip = ip;
        self
    }

    /// Mark a node as not answering traceroute probes.
    pub fn set_anonymous(&mut self, node: NodeId) -> &mut Self {
        self.nodes[node.0 as usize].anonymous = true;
        self
    }

    /// Does a directed link from `a` to `b` already exist? (O(links); used
    /// by generators to avoid duplicate-link panics.)
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.links.iter().any(|l| l.from == a && l.to == b)
    }

    /// Add a one-way link.
    pub fn simplex(&mut self, from: NodeId, to: NodeId, params: LinkParams) -> LinkId {
        assert!(from != to, "self-loops are not allowed");
        assert!((from.0 as usize) < self.nodes.len(), "unknown from-node");
        assert!((to.0 as usize) < self.nodes.len(), "unknown to-node");
        let delay = params.delay.unwrap_or_else(|| {
            self.nodes[from.0 as usize]
                .location
                .propagation_delay(&self.nodes[to.0 as usize].location)
        });
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            from,
            to,
            capacity: params.capacity,
            delay,
            loss: params.loss,
            cost: params.cost,
        });
        id
    }

    /// Add a pair of symmetric links and return (forward, reverse).
    pub fn duplex(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> (LinkId, LinkId) {
        (self.simplex(a, b, params), self.simplex(b, a, params))
    }

    /// Add an asymmetric duplex link (common for access networks).
    pub fn duplex_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        up: LinkParams,
        down: LinkParams,
    ) -> (LinkId, LinkId) {
        (self.simplex(a, b, up), self.simplex(b, a, down))
    }

    /// Finalize into an immutable topology.
    pub fn build(self) -> Topology {
        let mut edge_index = HashMap::with_capacity(self.links.len());
        for link in &self.links {
            let prev = edge_index.insert((link.from, link.to), link.id);
            assert!(
                prev.is_none(),
                "duplicate link {} -> {}",
                link.from,
                link.to
            );
        }
        let csr = Csr::build(
            self.nodes.len(),
            self.links.iter().map(|l| (l.from.0, l.to.0, l.cost, l.id)),
        );
        let rcsr = Csr::build(
            self.nodes.len(),
            self.links.iter().map(|l| (l.to.0, l.from.0, l.cost, l.id)),
        );
        let name_index = self.nodes.iter().map(|n| (n.name.clone(), n.id)).collect();
        Topology {
            nodes: self.nodes,
            links: self.links,
            csr,
            rcsr,
            edge_index,
            name_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_node() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(49.0, -123.0));
        let r = b.router("r", GeoPoint::new(51.0, -114.0));
        let c = b.host("c", GeoPoint::new(37.0, -122.0));
        b.duplex(
            a,
            r,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(5)),
        );
        b.duplex(
            r,
            c,
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(12)),
        );
        (b.build(), a, r, c)
    }

    #[test]
    fn builder_basics() {
        let (t, a, r, c) = three_node();
        assert_eq!(t.nodes().len(), 3);
        assert_eq!(t.links().len(), 4);
        assert_eq!(t.node_by_name("r"), Some(r));
        assert_eq!(t.node(a).kind, NodeKind::Host);
        assert!(t.link_between(a, r).is_some());
        assert!(t.link_between(a, c).is_none());
        assert_eq!(t.outgoing(r).len(), 2);
    }

    #[test]
    fn csr_mirrors_links_and_reverse() {
        let (t, a, r, c) = three_node();
        assert_eq!(t.csr().node_count(), t.nodes().len());
        assert_eq!(t.csr().arc_count(), t.links().len());
        assert_eq!(t.reverse_csr().arc_count(), t.links().len());
        // Forward arcs of r are its outgoing links, in link-id order.
        let out = t.outgoing(r);
        assert_eq!(out.len(), 2);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        for (target, cost, lid) in t.csr().arcs(r.0) {
            let l = t.link(lid);
            assert_eq!(l.from, r);
            assert_eq!(l.to.0, target);
            assert_eq!(l.cost, cost);
        }
        // Reverse arcs of r point back at the links' sources: a and c.
        let ins: Vec<_> = t.reverse_csr().arcs(r.0).collect();
        assert_eq!(ins.len(), 2);
        for &(source, cost, lid) in &ins {
            let l = t.link(lid);
            assert_eq!(l.to, r);
            assert_eq!(l.from.0, source);
            assert_eq!(l.cost, cost);
        }
        let sources: Vec<u32> = ins.iter().map(|&(s, ..)| s).collect();
        assert!(sources.contains(&a.0) && sources.contains(&c.0));
    }

    #[test]
    fn links_on_path_validates_adjacency() {
        let (t, a, r, c) = three_node();
        let links = t.links_on_path(&[a, r, c]).unwrap();
        assert_eq!(links.len(), 2);
        let err = t.links_on_path(&[a, c]).unwrap_err();
        assert_eq!(err, crate::error::NetError::BrokenPath { from: a, to: c });
    }

    #[test]
    fn path_metrics() {
        let (t, a, r, c) = three_node();
        let links = t.links_on_path(&[a, r, c]).unwrap();
        assert_eq!(t.path_delay(&[a, r, c]), SimTime::from_millis(17));
        assert!((t.path_capacity(&links).mbps() - 50.0).abs() < 1e-9);
        assert_eq!(t.path_loss(&links), 0.0);
    }

    #[test]
    fn path_loss_combines() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let c = b.host("c", GeoPoint::new(1.0, 1.0));
        b.simplex(
            a,
            c,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1)).with_loss(0.01),
        );
        let t = b.build();
        let links = t.links_on_path(&[a, c]).unwrap();
        assert!((t.path_loss(&links) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn geo_delay_derivation() {
        let mut b = TopologyBuilder::new();
        let a = b.host("van", crate::geo::places::UBC);
        let c = b.host("edm", crate::geo::places::UALBERTA);
        b.simplex(a, c, LinkParams::geo(Bandwidth::from_mbps(10.0)));
        let t = b.build();
        let d = t.link(LinkId(0)).delay;
        // ~820 km * 1.4 inflation / 200k km/s ~ 5.7 ms
        assert!(
            d > SimTime::from_millis(3) && d < SimTime::from_millis(10),
            "delay {d}"
        );
    }

    #[test]
    fn ip_allocation_unique() {
        let (t, ..) = three_node();
        let ips: std::collections::HashSet<_> = t.nodes().iter().map(|n| n.ip).collect();
        assert_eq!(ips.len(), 3);
        assert_eq!(t.node(NodeId(0)).ip_string(), "10.0.0.1");
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_panics() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let c = b.host("c", GeoPoint::new(1.0, 1.0));
        let p = LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1));
        b.simplex(a, c, p);
        b.simplex(a, c, p);
        b.build();
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        b.simplex(
            a,
            a,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1)),
        );
    }

    #[test]
    fn asym_duplex() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let c = b.host("c", GeoPoint::new(1.0, 1.0));
        let (up, down) = b.duplex_asym(
            a,
            c,
            LinkParams::new(Bandwidth::from_mbps(2.5), SimTime::from_millis(1)),
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(1)),
        );
        let t = b.build();
        assert!((t.link(up).capacity.mbps() - 2.5).abs() < 1e-9);
        assert!((t.link(down).capacity.mbps() - 50.0).abs() < 1e-9);
    }
}
