//! Middleboxes: traffic policers and firewalls.
//!
//! The paper attributes UBC's slow Google uploads to the hand-off at
//! `vncv1rtr2.canarie.ca` onto the `pacificwave` link, where PlanetLab-class
//! traffic is (the authors speculate) rate-limited, while UAlberta traffic
//! crossing the *same router* is not. We model that with policers scoped by
//! [`crate::flow::FlowClass`]:
//!
//! * a **per-flow** policer caps each matching flow independently (typical
//!   of per-slice shaping on PlanetLab, or per-connection rate limits), and
//! * an **aggregate** policer gives all matching flows a shared virtual
//!   queue of fixed capacity, which the allocator shares max-min fairly.
//!
//! Firewalls drop flows of a class outright (used for failure injection and
//!   Science-DMZ-style experiments).

use crate::flow::FlowClass;
use crate::topology::LinkId;
use crate::units::Bandwidth;

/// How a policer applies its rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicerScope {
    /// Each matching flow is independently capped at the policer rate.
    PerFlow,
    /// All matching flows share the policer rate max-min fairly.
    Aggregate,
}

/// A rate policer attached to a link, filtered by flow class.
#[derive(Debug, Clone)]
pub struct Policer {
    /// Link the policer is attached to.
    pub link: LinkId,
    /// Which traffic classes it matches.
    pub matches: Vec<FlowClass>,
    /// The policed rate.
    pub rate: Bandwidth,
    /// Per-flow or aggregate semantics.
    pub scope: PolicerScope,
    /// Diagnostic name (appears in bottleneck reports).
    pub name: String,
}

impl Policer {
    /// A per-flow policer.
    pub fn per_flow(name: &str, link: LinkId, class: FlowClass, rate: Bandwidth) -> Self {
        Policer {
            link,
            matches: vec![class],
            rate,
            scope: PolicerScope::PerFlow,
            name: name.into(),
        }
    }

    /// An aggregate policer.
    pub fn aggregate(name: &str, link: LinkId, class: FlowClass, rate: Bandwidth) -> Self {
        Policer {
            link,
            matches: vec![class],
            rate,
            scope: PolicerScope::Aggregate,
            name: name.into(),
        }
    }

    /// Extend the matched classes.
    pub fn also_matching(mut self, class: FlowClass) -> Self {
        self.matches.push(class);
        self
    }

    /// Does this policer apply to a flow of `class` crossing `link`?
    pub fn applies(&self, link: LinkId, class: FlowClass) -> bool {
        self.link == link && self.matches.contains(&class)
    }
}

/// A firewall rule: drop flows of the given classes crossing a link.
#[derive(Debug, Clone)]
pub struct FirewallRule {
    /// Link being filtered.
    pub link: LinkId,
    /// Dropped classes.
    pub drops: Vec<FlowClass>,
    /// Diagnostic name.
    pub name: String,
}

impl FirewallRule {
    /// Build a rule dropping one class.
    pub fn drop_class(name: &str, link: LinkId, class: FlowClass) -> Self {
        FirewallRule {
            link,
            drops: vec![class],
            name: name.into(),
        }
    }

    /// Does the rule drop a flow of `class` on `link`?
    pub fn blocks(&self, link: LinkId, class: FlowClass) -> bool {
        self.link == link && self.drops.contains(&class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_flow_policer_matches_class_and_link() {
        let p = Policer::per_flow(
            "pacificwave",
            LinkId(3),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(9.5),
        );
        assert!(p.applies(LinkId(3), FlowClass::PlanetLab));
        assert!(!p.applies(LinkId(3), FlowClass::Research));
        assert!(!p.applies(LinkId(4), FlowClass::PlanetLab));
        assert_eq!(p.scope, PolicerScope::PerFlow);
    }

    #[test]
    fn also_matching_extends() {
        let p = Policer::aggregate(
            "ix",
            LinkId(0),
            FlowClass::Commodity,
            Bandwidth::from_mbps(100.0),
        )
        .also_matching(FlowClass::Background);
        assert!(p.applies(LinkId(0), FlowClass::Commodity));
        assert!(p.applies(LinkId(0), FlowClass::Background));
        assert_eq!(p.scope, PolicerScope::Aggregate);
    }

    #[test]
    fn firewall_blocks() {
        let f = FirewallRule::drop_class("campus-fw", LinkId(7), FlowClass::Probe);
        assert!(f.blocks(LinkId(7), FlowClass::Probe));
        assert!(!f.blocks(LinkId(7), FlowClass::Research));
        assert!(!f.blocks(LinkId(8), FlowClass::Probe));
    }
}
