//! Precomputed route oracle over the CSR topology.
//!
//! [`crate::routing::RoutingTable`] answers every query by running Dijkstra
//! from scratch — fine at the paper's ~40-node North America map, wrong at
//! the 100k-node multi-region scale the synthetic globe reaches. The oracle
//! instead precomputes one **shortest-path tree per queried source** (and,
//! for detour enumeration, one reverse tree per queried destination), so:
//!
//! * `path` / `links` are near-O(path length): walk the tree's predecessor
//!   chain. With a caller-provided buffer ([`RouteOracle::path_into`] /
//!   [`RouteOracle::links_into`]) a warm query performs **zero heap
//!   allocations**.
//! * [`RouteOracle::k_detours`] ranks every node `v` by
//!   `dist(src→v) + dist(v→dst)` using one forward and one reverse tree —
//!   the Pied-Piper-style relay enumeration — in O(n log n) for the ranking
//!   plus O(k · path length) for materialisation, instead of one Dijkstra
//!   per candidate via.
//!
//! Trees are built lazily on first use of a source (or destination, for the
//! reverse direction) and cached; the cache is a pure function of the
//! topology, never of query history, so it is **excluded from the audit
//! digest** — only the override map (actual routing policy) is folded in.
//!
//! Route overrides layer on top exactly as in [`crate::routing`]: an
//! override pins the (src, dst) pair before any tree is consulted, and is
//! validated lazily so a broken override fails loudly at use.
//!
//! Tie-breaking is canonical and identical to the reference Dijkstra in
//! [`crate::routing::dijkstra`]: nodes settle in `(dist, node id)` order and
//! a node's predecessor is the smallest-id settled neighbour that achieves
//! its final distance. The simcheck differential plane re-runs whole
//! scenarios under the reference and flags any digest divergence.

use crate::error::{NetError, NetResult};
use crate::routing::RouteOverride;
use crate::topology::{Csr, LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A shortest-path tree rooted at one node.
///
/// For a forward tree rooted at `src`, `prev_node[v]` is the predecessor of
/// `v` on the canonical shortest path `src → v` and `prev_link[v]` the link
/// entering `v`. For a reverse tree rooted at `dst` (built over the reverse
/// CSR), `prev_node[v]` is the **successor** of `v` on the canonical path
/// `v → dst` and `prev_link[v]` the link leaving `v`. `u32::MAX` means none.
#[derive(Debug, Clone)]
struct Spt {
    dist: Vec<u64>,
    prev_node: Vec<u32>,
    prev_link: Vec<u32>,
}

const NONE: u32 = u32::MAX;
const UNREACHABLE: u64 = u64::MAX;

/// Reusable scratch so warm queries and tree builds allocate nothing.
#[derive(Debug, Clone, Default)]
struct Scratch {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    settled: Vec<bool>,
    /// `(combined cost, via)` candidates for `k_detours`.
    ranked: Vec<(u64, u32)>,
    /// Stamped visited marks for loop-freedom checks.
    mark: Vec<u32>,
    mark_stamp: u32,
    /// Joined candidate path under construction.
    joined: Vec<NodeId>,
}

/// One enumerated detour: the canonical shortest path `src → via → dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetourPath {
    /// The pivot node the detour was enumerated through.
    pub via: NodeId,
    /// Total link cost of the joined path.
    pub cost: u64,
    /// Full node path from `src` to `dst` through `via`.
    pub path: Vec<NodeId>,
}

/// Precomputed shortest-path oracle with override layering.
#[derive(Debug, Clone, Default)]
pub struct RouteOracle {
    overrides: HashMap<(NodeId, NodeId), Vec<NodeId>>,
    forward: HashMap<u32, Spt>,
    reverse: HashMap<u32, Spt>,
    scratch: Scratch,
}

impl RouteOracle {
    /// Empty oracle (pure shortest-path routing, no trees built yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an override; replaces any previous override for the pair.
    pub fn add_override(&mut self, ov: RouteOverride) {
        self.overrides.insert((ov.src, ov.dst), ov.path);
    }

    /// Number of installed overrides.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// The pinned path for a pair, if any (unvalidated).
    pub fn override_for(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        self.overrides.get(&(src, dst)).map(|p| p.as_slice())
    }

    /// Number of cached trees (forward + reverse); test introspection.
    pub fn tree_count(&self) -> usize {
        self.forward.len() + self.reverse.len()
    }

    /// Drop all cached trees (call after the topology they were built over
    /// is replaced). Overrides are kept: they are policy, not cache.
    pub fn clear_trees(&mut self) {
        self.forward.clear();
        self.reverse.clear();
    }

    /// The path from `src` to `dst` into a caller-owned buffer: the
    /// installed override if present, otherwise the canonical minimum-cost
    /// path. Warm queries (tree already built) perform no heap allocation
    /// beyond what `out` needs.
    pub fn path_into(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<NodeId>,
    ) -> NetResult<()> {
        out.clear();
        if !topo.contains(src) {
            return Err(NetError::UnknownNode(src));
        }
        if !topo.contains(dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            out.push(src);
            return Ok(());
        }
        if let Some(p) = self.overrides.get(&(src, dst)) {
            // Validate lazily so a bad override fails loudly at use.
            validate_path(topo, p)?;
            out.extend_from_slice(p);
            return Ok(());
        }
        let tree = ensure_tree(&mut self.forward, &mut self.scratch, topo.csr(), src.0);
        if tree.dist[dst.0 as usize] == UNREACHABLE {
            return Err(NetError::NoRoute { src, dst });
        }
        let mut cur = dst.0;
        while cur != NONE {
            out.push(NodeId(cur));
            cur = tree.prev_node[cur as usize];
        }
        debug_assert_eq!(out.last(), Some(&src));
        out.reverse();
        Ok(())
    }

    /// Allocating convenience around [`RouteOracle::path_into`].
    pub fn path(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Vec<NodeId>> {
        let mut out = Vec::new();
        self.path_into(topo, src, dst, &mut out)?;
        Ok(out)
    }

    /// The links of the `src → dst` path into a caller-owned buffer. On the
    /// tree path this reads `prev_link` directly — no adjacency revalidation
    /// and no allocation; override paths are validated as usual.
    pub fn links_into(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) -> NetResult<()> {
        out.clear();
        if !topo.contains(src) {
            return Err(NetError::UnknownNode(src));
        }
        if !topo.contains(dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Ok(());
        }
        if let Some(p) = self.overrides.get(&(src, dst)) {
            for w in p.windows(2) {
                match topo.link_between(w[0], w[1]) {
                    Some(l) => out.push(l),
                    None => {
                        return Err(NetError::BrokenPath {
                            from: w[0],
                            to: w[1],
                        })
                    }
                }
            }
            return Ok(());
        }
        let tree = ensure_tree(&mut self.forward, &mut self.scratch, topo.csr(), src.0);
        if tree.dist[dst.0 as usize] == UNREACHABLE {
            return Err(NetError::NoRoute { src, dst });
        }
        let mut cur = dst.0;
        while tree.prev_link[cur as usize] != NONE {
            out.push(LinkId(tree.prev_link[cur as usize]));
            cur = tree.prev_node[cur as usize];
        }
        out.reverse();
        Ok(())
    }

    /// Allocating convenience around [`RouteOracle::links_into`].
    pub fn links(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Vec<LinkId>> {
        let mut out = Vec::new();
        self.links_into(topo, src, dst, &mut out)?;
        Ok(out)
    }

    /// Cost of the canonical shortest path (ignoring overrides), or `None`
    /// if unreachable.
    pub fn cost(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<u64> {
        if !topo.contains(src) || !topo.contains(dst) {
            return None;
        }
        let tree = ensure_tree(&mut self.forward, &mut self.scratch, topo.csr(), src.0);
        match tree.dist[dst.0 as usize] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Enumerate up to `k` distinct loop-free detour paths `src → via → dst`
    /// in deterministic order: nondecreasing joined cost, ties by via id.
    ///
    /// Every node `v` with finite `dist(src→v)` and `dist(v→dst)` is a
    /// candidate pivot; each joins the canonical forward path to `v` with
    /// the canonical path `v → dst` from the reverse tree. Candidates whose
    /// joined path repeats a node (a loop) or duplicates the direct
    /// shortest path — or an already-accepted detour — are skipped, so the
    /// result is a set of genuine alternatives to the primary route.
    ///
    /// This is a pure topology query: route overrides pin *primary* paths
    /// and are deliberately not consulted here.
    pub fn k_detours(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        k: usize,
    ) -> NetResult<Vec<DetourPath>> {
        if !topo.contains(src) {
            return Err(NetError::UnknownNode(src));
        }
        if !topo.contains(dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst || k == 0 {
            return Ok(Vec::new());
        }
        let n = topo.nodes().len();
        ensure_tree(&mut self.forward, &mut self.scratch, topo.csr(), src.0);
        ensure_tree(
            &mut self.reverse,
            &mut self.scratch,
            topo.reverse_csr(),
            dst.0,
        );
        let fwd = &self.forward[&src.0];
        let rev = &self.reverse[&dst.0];
        if fwd.dist[dst.0 as usize] == UNREACHABLE {
            return Err(NetError::NoRoute { src, dst });
        }

        // The direct shortest path, for exclusion.
        let mut primary = Vec::new();
        let mut cur = dst.0;
        while cur != NONE {
            primary.push(NodeId(cur));
            cur = fwd.prev_node[cur as usize];
        }
        primary.reverse();

        let ranked = &mut self.scratch.ranked;
        ranked.clear();
        for v in 0..n as u32 {
            if v == src.0 || v == dst.0 {
                continue;
            }
            let df = fwd.dist[v as usize];
            let dr = rev.dist[v as usize];
            if df != UNREACHABLE && dr != UNREACHABLE {
                ranked.push((df + dr, v));
            }
        }
        ranked.sort_unstable();

        if self.scratch.mark.len() < n {
            self.scratch.mark.resize(n, 0);
        }
        let mut accepted: Vec<DetourPath> = Vec::new();
        for &(cost, via) in self.scratch.ranked.iter() {
            if accepted.len() >= k {
                break;
            }
            self.scratch.mark_stamp = self.scratch.mark_stamp.wrapping_add(1);
            let stamp = self.scratch.mark_stamp;
            let joined = &mut self.scratch.joined;
            joined.clear();
            // Forward half: src → via (walk prev chain backwards, reverse).
            let mut cur = via;
            while cur != NONE {
                joined.push(NodeId(cur));
                cur = fwd.prev_node[cur as usize];
            }
            joined.reverse();
            for node in joined.iter() {
                self.scratch.mark[node.0 as usize] = stamp;
            }
            // Reverse half: via → dst (successor chain), checking for loops
            // against the forward half as we go.
            let mut loop_free = true;
            let mut cur = rev.prev_node[via as usize];
            while cur != NONE {
                if self.scratch.mark[cur as usize] == stamp {
                    loop_free = false;
                    break;
                }
                self.scratch.mark[cur as usize] = stamp;
                joined.push(NodeId(cur));
                cur = rev.prev_node[cur as usize];
            }
            if !loop_free {
                continue;
            }
            debug_assert_eq!(joined.first(), Some(&src));
            debug_assert_eq!(joined.last(), Some(&dst));
            if *joined == primary || accepted.iter().any(|d| d.path == *joined) {
                continue;
            }
            accepted.push(DetourPath {
                via: NodeId(via),
                cost,
                path: joined.clone(),
            });
        }
        Ok(accepted)
    }

    /// Fold the oracle's canonical routing state — the override map, sorted
    /// — into an audit digest. Cached trees are deliberately excluded: they
    /// are a pure function of the topology populated by query history, and
    /// two state-identical sims must digest identically no matter which
    /// diagnostic lookups each happened to run.
    pub fn digest_into(&self, d: &mut crate::audit::Digest) {
        let mut entries: Vec<_> = self.overrides.iter().collect();
        entries.sort_unstable_by_key(|((s, t), _)| (s.0, t.0));
        d.write_u64(entries.len() as u64);
        for ((s, t), path) in entries {
            d.write_u64(s.0 as u64);
            d.write_u64(t.0 as u64);
            d.write_u64(path.len() as u64);
            for n in path {
                d.write_u64(n.0 as u64);
            }
        }
    }
}

/// Validate that consecutive path nodes are joined by links, without
/// materialising the link list.
fn validate_path(topo: &Topology, path: &[NodeId]) -> NetResult<()> {
    for w in path.windows(2) {
        if topo.link_between(w[0], w[1]).is_none() {
            return Err(NetError::BrokenPath {
                from: w[0],
                to: w[1],
            });
        }
    }
    Ok(())
}

/// Get or build the tree rooted at `root` over `csr`.
fn ensure_tree<'a>(
    trees: &'a mut HashMap<u32, Spt>,
    scratch: &mut Scratch,
    csr: &Csr,
    root: u32,
) -> &'a Spt {
    trees
        .entry(root)
        .or_insert_with(|| build_tree(scratch, csr, root))
}

/// Canonical Dijkstra over a CSR, producing a full shortest-path tree.
///
/// Determinism contract (shared bit-for-bit with the reference
/// [`crate::routing::dijkstra`]): nodes settle in `(dist, node id)` heap
/// order; `prev_node[v]` is the smallest-id node `u` that (a) settled before
/// `v` and (b) achieves `dist[v] = dist[u] + cost(u→v)`. Once a node is
/// settled its predecessor is frozen — equal-cost relaxations arriving later
/// may not rewrite it (the historical bug class: a post-settlement rewrite
/// made answers depend on which destination was queried first, and with
/// zero-cost edges could even knot the predecessor chain into a cycle).
fn build_tree(scratch: &mut Scratch, csr: &Csr, root: u32) -> Spt {
    let n = csr.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut prev_node = vec![NONE; n];
    let mut prev_link = vec![NONE; n];
    scratch.settled.clear();
    scratch.settled.resize(n, false);
    scratch.heap.clear();

    dist[root as usize] = 0;
    scratch.heap.push(Reverse((0, root)));
    while let Some(Reverse((d, u))) = scratch.heap.pop() {
        if scratch.settled[u as usize] {
            continue;
        }
        scratch.settled[u as usize] = true;
        for (v, cost, lid) in csr.arcs(u) {
            let nd = d + cost as u64;
            let vi = v as usize;
            if nd < dist[vi] {
                dist[vi] = nd;
                prev_node[vi] = u;
                prev_link[vi] = lid.0;
                scratch.heap.push(Reverse((nd, v)));
            } else if nd == dist[vi] && !scratch.settled[vi] && u < prev_node[vi] {
                // Same distance via a smaller settled predecessor: adopt it.
                // No re-push needed — an equal-key heap entry already exists.
                prev_node[vi] = u;
                prev_link[vi] = lid.0;
            }
        }
    }
    Spt {
        dist,
        prev_node,
        prev_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::time::SimTime;
    use crate::topology::{LinkParams, TopologyBuilder};
    use crate::units::Bandwidth;

    fn p(cost: u32) -> LinkParams {
        LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1)).with_cost(cost)
    }

    /// a → {x (5+5), y (50+50)} → d, plus a spur s reachable only from d.
    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let x = b.router("x", GeoPoint::new(1.0, 0.0));
        let y = b.router("y", GeoPoint::new(-1.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        b.duplex(a, x, p(5));
        b.duplex(x, d, p(5));
        b.duplex(a, y, p(50));
        b.duplex(y, d, p(50));
        (b.build(), a, x, y, d)
    }

    #[test]
    fn path_and_links_match_topology() {
        let (t, a, x, _y, d) = diamond();
        let mut o = RouteOracle::new();
        assert_eq!(o.path(&t, a, d).unwrap(), vec![a, x, d]);
        let links = o.links(&t, a, d).unwrap();
        assert_eq!(links, t.links_on_path(&[a, x, d]).unwrap());
        assert_eq!(o.cost(&t, a, d), Some(10));
        assert_eq!(o.cost(&t, a, NodeId(99)), None);
    }

    #[test]
    fn self_path_and_errors() {
        let (t, a, _x, _y, d) = diamond();
        let mut o = RouteOracle::new();
        assert_eq!(o.path(&t, a, a).unwrap(), vec![a]);
        assert!(o.links(&t, a, a).unwrap().is_empty());
        let ghost = NodeId(99);
        assert_eq!(o.path(&t, a, ghost), Err(NetError::UnknownNode(ghost)));
        assert_eq!(o.path(&t, ghost, d), Err(NetError::UnknownNode(ghost)));
    }

    #[test]
    fn override_layering() {
        let (t, a, _x, y, d) = diamond();
        let mut o = RouteOracle::new();
        o.add_override(RouteOverride::new(a, d, vec![a, y, d]));
        assert_eq!(o.path(&t, a, d).unwrap(), vec![a, y, d]);
        assert_eq!(
            o.links(&t, a, d).unwrap(),
            t.links_on_path(&[a, y, d]).unwrap()
        );
        // Reverse direction unaffected.
        assert_eq!(o.path(&t, d, a).unwrap().len(), 3);
        // Broken override errors at use.
        o.add_override(RouteOverride::new(d, a, vec![d, a]));
        assert!(matches!(o.path(&t, d, a), Err(NetError::BrokenPath { .. })));
    }

    #[test]
    fn warm_queries_reuse_one_tree() {
        let (t, a, _x, y, d) = diamond();
        let mut o = RouteOracle::new();
        o.path(&t, a, d).unwrap();
        o.path(&t, a, y).unwrap();
        o.path(&t, a, d).unwrap();
        assert_eq!(o.tree_count(), 1);
        o.clear_trees();
        assert_eq!(o.tree_count(), 0);
    }

    #[test]
    fn k_detours_diamond() {
        let (t, a, x, y, d) = diamond();
        let mut o = RouteOracle::new();
        let detours = o.k_detours(&t, a, d, 4).unwrap();
        // Primary path a-x-d is excluded; the only alternative is a-y-d.
        assert_eq!(detours.len(), 1);
        assert_eq!(detours[0].via, y);
        assert_eq!(detours[0].path, vec![a, y, d]);
        assert_eq!(detours[0].cost, 100);
        // x pivots onto the primary path and must not reappear.
        assert!(detours.iter().all(|dt| dt.via != x));
    }

    #[test]
    fn k_detours_order_and_limits() {
        // Three parallel two-hop routes of distinct costs.
        let mut b = TopologyBuilder::new();
        let s = b.host("s", GeoPoint::new(0.0, 0.0));
        let m1 = b.router("m1", GeoPoint::new(1.0, 0.0));
        let m2 = b.router("m2", GeoPoint::new(2.0, 0.0));
        let m3 = b.router("m3", GeoPoint::new(3.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        b.duplex(s, m1, p(1));
        b.duplex(m1, d, p(1));
        b.duplex(s, m2, p(2));
        b.duplex(m2, d, p(2));
        b.duplex(s, m3, p(3));
        b.duplex(m3, d, p(3));
        let t = b.build();
        let mut o = RouteOracle::new();
        let detours = o.k_detours(&t, s, d, 10).unwrap();
        // Primary is s-m1-d (cost 2); detours are the other two, cheap first.
        assert_eq!(detours.len(), 2);
        assert_eq!(detours[0].path, vec![s, m2, d]);
        assert_eq!(detours[1].path, vec![s, m3, d]);
        assert!(detours[0].cost < detours[1].cost);
        assert_eq!(o.k_detours(&t, s, d, 1).unwrap().len(), 1);
        assert!(o.k_detours(&t, s, s, 4).unwrap().is_empty());
        assert!(o.k_detours(&t, s, d, 0).unwrap().is_empty());
        // Each detour is loop-free.
        for dt in &detours {
            let mut seen = std::collections::HashSet::new();
            assert!(dt.path.iter().all(|n| seen.insert(*n)), "{:?}", dt.path);
        }
    }

    #[test]
    fn digest_ignores_tree_cache() {
        let (t, a, _x, y, d) = diamond();
        let mut warm = RouteOracle::new();
        let mut cold = RouteOracle::new();
        for o in [&mut warm, &mut cold] {
            o.add_override(RouteOverride::new(a, d, vec![a, y, d]));
        }
        warm.path(&t, a, d).unwrap();
        warm.path(&t, d, a).unwrap();
        warm.k_detours(&t, a, d, 2).unwrap();
        let mut d1 = crate::audit::Digest::new();
        let mut d2 = crate::audit::Digest::new();
        warm.digest_into(&mut d1);
        cold.digest_into(&mut d2);
        assert_eq!(d1.finish(), d2.finish());
    }
}
