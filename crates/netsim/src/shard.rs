//! Sharded parallel execution across independent connected components.
//!
//! [`FlowCore`](crate::flow::FlowCore) (the incremental allocator) proves
//! that disjoint resource components never interact: a component's
//! allocation is a pure function of its own membership and capacities.
//! This module turns that isolation into parallelism while keeping the
//! engine's headline guarantee — same seed, same bits — intact:
//!
//! * [`ComponentTracker`] maintains the connected components of the
//!   resource↔flow coupling graph incrementally (union-find on flow
//!   insert, lazy rebuild on removal-induced splits). The partition it
//!   reports is what a sharded run distributes over, and the moments it
//!   changes shape (merge/split) are exactly where a sharded executor must
//!   barrier.
//! * [`run_shards`] executes independent shards on scoped worker threads
//!   (the house style: `std::thread::scope`, no runtime) with a
//!   deterministic reduction — results land in shard-id order no matter
//!   which worker finishes first, so any fold over them is bit-identical
//!   to the sequential fold.
//! * [`fold_digests`] and [`merge_rate_changes`] are the canonical
//!   reductions: digests folded in shard-id order, cross-shard rate
//!   changes sorted by flow id — never by slab slot assignment or worker
//!   completion order, both of which vary across shards and schedules.
//!
//! # Determinism argument
//!
//! Each shard is an independent sub-simulation with its own event clock,
//! its own event queue and its own seeded PRNG; its execution is a pure
//! function of its spec, identical on any thread. Workers only *claim*
//! shard indices from one atomic counter and write each result into the
//! slot for that index; the end-of-round thread join is the only barrier,
//! and the merge that follows reads slots in index order. Thread
//! scheduling therefore cannot reorder anything observable. Workloads
//! whose components stay coupled degrade gracefully to a single shard —
//! sequential execution through the same code path, trivially
//! bit-identical. `simcheck` proves the end-to-end claim by running every
//! scenario under this executor and diffing chained digests against the
//! sequential execution ([`ShardDivergence`] fires on any mismatch).
//!
//! [`ShardDivergence`]: https://docs.rs/simcheck

use crate::audit::Digest;
use crate::flow::RateChange;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard ceiling on worker threads: shards are memory-bandwidth-bound well
/// before this, and an unbounded pool only adds scheduling noise.
pub const MAX_THREADS: usize = 8;

/// Number of worker threads to use for sharded runs: an explicit request
/// (CLI `--threads`), else the `DETOUR_THREADS` environment variable, else
/// the host's available parallelism — always clamped to
/// `1..=`[`MAX_THREADS`]. A requested `0` means "auto".
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("DETOUR_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// Incrementally tracked connected components of the resource↔flow
/// coupling graph.
///
/// Resources are the vertices; every flow couples the resources it
/// crosses. Inserting a flow that spans two components *merges* them
/// (union-find, O(α) per edge). Removing a flow can *split* a component,
/// which union-find cannot express incrementally — the tracker marks
/// itself dirty and rebuilds from the surviving flows on the next query.
/// Merge and split are precisely the events at which a sharded executor
/// must barrier and repartition; [`ComponentTracker::merges`] and
/// [`ComponentTracker::rebuilds`] count them.
///
/// Flows crossing no resources (uncapped empty-resource flows) are their
/// own singleton components.
///
/// The partition is reported in canonical form (see
/// [`ComponentTracker::components`]): members sorted by flow id,
/// components ordered by their smallest member flow id — independent of
/// insertion order, union order and any slot assignment, and therefore
/// identical no matter which shard or thread computed it.
#[derive(Debug, Clone)]
pub struct ComponentTracker {
    /// Union-find parents over resources; roots are always the smallest
    /// resource index in their component, so the root *is* the canonical
    /// component id.
    parent: Vec<u32>,
    /// flow id → the (sorted, deduped) resources it couples.
    flows: HashMap<u64, Vec<u32>>,
    merges: u64,
    rebuilds: u64,
    dirty: bool,
}

impl ComponentTracker {
    /// An empty tracker over `resources` vertices.
    pub fn new(resources: usize) -> Self {
        ComponentTracker {
            parent: (0..resources as u32).collect(),
            flows: HashMap::new(),
            merges: 0,
            rebuilds: 0,
            dirty: false,
        }
    }

    /// Append a resource vertex; returns its index.
    pub fn add_resource(&mut self) -> u32 {
        let r = self.parent.len() as u32;
        self.parent.push(r);
        r
    }

    /// Number of resource vertices.
    pub fn resources(&self) -> usize {
        self.parent.len()
    }

    /// Number of tracked flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Spanning inserts that merged two or more components so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Removal-induced partition rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Track a flow coupling `resources`; returns true if the insert
    /// merged previously separate components (a shard-merge barrier
    /// point).
    pub fn insert_flow(&mut self, id: u64, resources: &[u32]) -> bool {
        self.ensure_fresh();
        let mut rs: Vec<u32> = resources.to_vec();
        rs.sort_unstable();
        rs.dedup();
        debug_assert!(rs.iter().all(|&r| (r as usize) < self.parent.len()));
        let mut merged = false;
        for w in rs.windows(2) {
            merged |= self.union(w[0], w[1]);
        }
        if merged {
            self.merges += 1;
        }
        let prev = self.flows.insert(id, rs);
        debug_assert!(prev.is_none(), "flow {id} tracked twice");
        merged
    }

    /// Stop tracking a flow; returns false if it was unknown. A removed
    /// multi-resource flow may have been the only thing stitching its
    /// component together, so the partition is rebuilt lazily on the next
    /// query (a shard-split barrier point).
    pub fn remove_flow(&mut self, id: u64) -> bool {
        let Some(rs) = self.flows.remove(&id) else {
            return false;
        };
        // A single-resource flow contributed no union; removing it can
        // never split anything.
        if rs.len() > 1 {
            self.dirty = true;
        }
        true
    }

    /// Number of components among *tracked flows* (empty components of
    /// flowless resources are not counted).
    pub fn component_count(&mut self) -> usize {
        self.components().len()
    }

    /// The current partition of tracked flows in canonical form: each
    /// component's flow ids sorted ascending, components ordered by their
    /// smallest member flow id.
    pub fn components(&mut self) -> Vec<Vec<u64>> {
        self.ensure_fresh();
        let mut flow_roots: Vec<(u64, Option<u32>)> = self
            .flows
            .iter()
            .map(|(&id, rs)| (id, rs.first().copied()))
            .collect();
        let mut by_root: HashMap<u32, Vec<u64>> = HashMap::new();
        let mut out: Vec<Vec<u64>> = Vec::new();
        for (id, first) in flow_roots.drain(..) {
            match first {
                Some(r) => {
                    let root = self.find(r);
                    by_root.entry(root).or_default().push(id);
                }
                // Isolated flow: its own singleton component.
                None => out.push(vec![id]),
            }
        }
        for (_, mut members) in by_root.drain() {
            members.sort_unstable();
            out.push(members);
        }
        out.sort_unstable_by_key(|c| c[0]);
        out
    }

    fn find(&mut self, r: u32) -> u32 {
        // Path halving: grandparent shortcut on the way up.
        let mut r = r as usize;
        while self.parent[r] as usize != r {
            self.parent[r] = self.parent[self.parent[r] as usize];
            r = self.parent[r] as usize;
        }
        r as u32
    }

    /// Union by smallest root index, so the canonical id (the component's
    /// minimum resource index) is always the root. Path halving in `find`
    /// keeps chains short without rank bookkeeping.
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }

    fn ensure_fresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.rebuilds += 1;
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        // Re-union every surviving flow's resource chain. The union-find
        // fixpoint is order-independent, so no ordering is needed here.
        let edges: Vec<(u32, u32)> = self
            .flows
            .values()
            .flat_map(|rs| rs.windows(2).map(|w| (w[0], w[1])))
            .collect();
        for (a, b) in edges {
            self.union(a, b);
        }
    }
}

/// Reference connected components, computed from scratch by breadth-first
/// search over the resource↔flow bipartite graph. Quadratic and
/// allocation-happy — exists as the oracle the incremental
/// [`ComponentTracker`] is property-tested against, the same
/// reference-implementation pattern as
/// [`max_min_allocate`](crate::flow::max_min_allocate). Returns the same
/// canonical form as [`ComponentTracker::components`].
pub fn reference_components(n_resources: usize, flows: &[(u64, Vec<u32>)]) -> Vec<Vec<u64>> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_resources];
    for (fi, (_, rs)) in flows.iter().enumerate() {
        for &r in rs {
            members[r as usize].push(fi);
        }
    }
    let mut flow_seen = vec![false; flows.len()];
    let mut res_seen = vec![false; n_resources];
    let mut out: Vec<Vec<u64>> = Vec::new();
    for start in 0..flows.len() {
        if flow_seen[start] {
            continue;
        }
        flow_seen[start] = true;
        let mut comp = vec![flows[start].0];
        let mut frontier: Vec<u32> = Vec::new();
        for &r in &flows[start].1 {
            if !res_seen[r as usize] {
                res_seen[r as usize] = true;
                frontier.push(r);
            }
        }
        while let Some(r) = frontier.pop() {
            for &fi in &members[r as usize] {
                if !flow_seen[fi] {
                    flow_seen[fi] = true;
                    comp.push(flows[fi].0);
                    for &r2 in &flows[fi].1 {
                        if !res_seen[r2 as usize] {
                            res_seen[r2 as usize] = true;
                            frontier.push(r2);
                        }
                    }
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out.sort_unstable_by_key(|c| c[0]);
    out
}

/// Execute independent shards on up to `workers` scoped threads; returns
/// the results **in shard-id order**, regardless of which worker finished
/// which shard first.
///
/// `run(i, spec)` is called exactly once per shard. Specs cross the thread
/// boundary (`S: Send`), but everything a shard builds from its spec —
/// `Sim`, processes, `Rc`-laden drivers — lives and dies on the worker
/// that claimed it, so shard internals need not be `Send`. Workers claim
/// indices from a single atomic counter (deterministic work set, arbitrary
/// schedule) and write results into per-shard slots; the scope join is the
/// barrier, after which slots are read in index order. With `workers <= 1`
/// (or a single shard... at most one worker has work) execution is
/// sequential through the same claim order, so sequential and parallel
/// runs fold identically.
pub fn run_shards<S, R, F>(shards: Vec<S>, workers: usize, run: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, S) -> R + Sync,
{
    let n = shards.len();
    if workers <= 1 || n == 0 {
        return shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| run(i, s))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let work: Vec<Mutex<Option<S>>> = shards.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                // Claim the next unclaimed shard. Relaxed suffices: the
                // mutexes order the data, and claim order is irrelevant to
                // the result by construction.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = work[i]
                    .lock()
                    .expect("shard spec lock")
                    .take()
                    .expect("each shard is claimed exactly once");
                let result = run(i, spec);
                *slots[i].lock().expect("shard result lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("shard result lock")
                .expect("every claimed shard stored a result")
        })
        .collect()
}

/// Fold per-shard chain digests into one, **in shard-id order**.
///
/// The fold itself is order-sensitive (FNV chaining) — the fixed canonical
/// order is exactly what makes the parallel reduction deterministic, so
/// callers must pass digests indexed by shard id ([`run_shards`] returns
/// precisely that), never by completion order. A single shard folds to its
/// own digest unchanged, so a one-component workload's sharded digest
/// equals its sequential digest bit for bit.
pub fn fold_digests(digests: &[u64]) -> u64 {
    match digests {
        [one] => *one,
        many => {
            let mut d = Digest::new();
            d.write_u64(many.len() as u64);
            for &x in many {
                d.write_u64(x);
            }
            d.finish()
        }
    }
}

/// Merge per-shard rate-change lists into one canonical list sorted by
/// flow id.
///
/// Slab slot assignment is shard-local (each shard's allocator hands out
/// its own slots, in an order that depends on that shard's event history)
/// and completion order is schedule-local, so neither may leak into the
/// merged order. Flow ids are globally unique and stable across shards,
/// which makes the id sort canonical: any permutation of the per-shard
/// lists — and any slot numbering within them — merges to the same bytes.
pub fn merge_rate_changes(per_shard: &[Vec<RateChange>]) -> Vec<RateChange> {
    let mut out: Vec<RateChange> = per_shard.iter().flatten().copied().collect();
    out.sort_by_key(|c| c.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_and_remove_splits() {
        let mut t = ComponentTracker::new(4);
        t.insert_flow(1, &[0]);
        t.insert_flow(2, &[1]);
        assert_eq!(t.component_count(), 2);
        assert_eq!(t.merges(), 0);
        // A spanning flow merges the two components.
        assert!(t.insert_flow(3, &[0, 1]));
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.merges(), 1);
        // Removing it splits them back.
        assert!(t.remove_flow(3));
        assert_eq!(t.component_count(), 2);
        assert_eq!(t.rebuilds(), 1);
        assert_eq!(t.components(), vec![vec![1], vec![2]]);
    }

    #[test]
    fn isolated_flows_are_singletons() {
        let mut t = ComponentTracker::new(2);
        t.insert_flow(7, &[]);
        t.insert_flow(5, &[0, 1]);
        assert_eq!(t.components(), vec![vec![5], vec![7]]);
    }

    #[test]
    fn matches_reference_on_a_small_graph() {
        let flows: Vec<(u64, Vec<u32>)> = vec![
            (10, vec![0, 1]),
            (11, vec![1]),
            (12, vec![2, 3]),
            (13, vec![3]),
            (14, vec![]),
        ];
        let mut t = ComponentTracker::new(4);
        for (id, rs) in &flows {
            t.insert_flow(*id, rs);
        }
        assert_eq!(t.components(), reference_components(4, &flows));
        assert_eq!(t.components(), vec![vec![10, 11], vec![12, 13], vec![14]]);
    }

    #[test]
    fn run_shards_returns_results_in_shard_order() {
        // Lower-indexed shards take strictly longer, so completion order is
        // the reverse of shard order — results must still come back 0..n.
        let shards: Vec<u64> = (0..6).collect();
        let out = run_shards(shards, 4, |i, v| {
            std::thread::sleep(std::time::Duration::from_millis(12 - 2 * i as u64));
            v * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn run_shards_sequential_and_parallel_agree() {
        let work = |_, v: u64| {
            let mut d = Digest::new();
            d.write_u64(v.wrapping_mul(0x9e37_79b9));
            d.finish()
        };
        let seq = run_shards((0..32).collect(), 1, work);
        let par = run_shards((0..32).collect(), 8, work);
        assert_eq!(seq, par);
        assert_eq!(fold_digests(&seq), fold_digests(&par));
    }

    #[test]
    fn fold_digests_is_identity_for_one_shard() {
        assert_eq!(fold_digests(&[42]), 42);
        assert_ne!(fold_digests(&[42, 43]), fold_digests(&[43, 42]));
    }

    #[test]
    fn merge_rate_changes_sorts_by_flow_id() {
        let a = vec![
            RateChange {
                id: 9,
                token: 0,
                rate: 1.0,
            },
            RateChange {
                id: 12,
                token: 1,
                rate: 2.0,
            },
        ];
        let b = vec![
            RateChange {
                id: 3,
                token: 7,
                rate: 3.0,
            },
            RateChange {
                id: 10,
                token: 2,
                rate: 4.0,
            },
        ];
        let m1 = merge_rate_changes(&[a.clone(), b.clone()]);
        let m2 = merge_rate_changes(&[b, a]);
        assert_eq!(m1, m2, "shard order must not matter");
        let ids: Vec<u64> = m1.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![3, 9, 10, 12]);
    }

    #[test]
    fn resolve_threads_clamps_and_defaults() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(100)), MAX_THREADS);
        assert!(resolve_threads(Some(0)) >= 1, "0 means auto");
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(None) <= MAX_THREADS);
    }
}
