//! Traceroute emulation.
//!
//! The paper's Figures 5 and 6 are raw `traceroute` output showing that UBC's
//! and UAlberta's traffic to Google Drive cross the same CANARIE router but
//! diverge at the pacificwave hand-off. We reproduce that diagnostic surface:
//! a traceroute walks the routed path, reporting each hop's DNS name, IPv4
//! address and cumulative round-trip time; anonymous hops render as `* * *`.

use crate::engine::Core;
use crate::error::NetResult;
use crate::time::SimTime;
use crate::topology::NodeId;
use rand::Rng;
use std::fmt;

/// One traceroute hop.
#[derive(Debug, Clone)]
pub struct Hop {
    /// TTL / hop index, starting at 1.
    pub index: usize,
    /// Node at this hop.
    pub node: NodeId,
    /// DNS name (empty when the hop is anonymous).
    pub name: String,
    /// IPv4 string (empty when the hop is anonymous).
    pub ip: String,
    /// Measured round-trip time to this hop (None when anonymous).
    pub rtt: Option<SimTime>,
}

/// A completed traceroute.
#[derive(Debug, Clone)]
pub struct Traceroute {
    /// Destination name as resolved.
    pub target_name: String,
    /// Destination IP.
    pub target_ip: String,
    /// The hops, in order. The source host itself is not listed (matching
    /// real traceroute output).
    pub hops: Vec<Hop>,
}

impl Traceroute {
    /// Run a traceroute over the routed path from `src` to `dst`.
    ///
    /// Per-hop RTTs are the cumulative two-way propagation delay plus small
    /// seeded queueing jitter (±15%), matching the look of real output
    /// without affecting any measured transfer.
    pub fn run(core: &mut Core, src: NodeId, dst: NodeId) -> NetResult<Traceroute> {
        let path = core.resolve_path(src, dst)?;
        let topo_delay: Vec<SimTime> = {
            let topo = core.topology();
            let mut cum = SimTime::ZERO;
            let mut delays = Vec::with_capacity(path.len().saturating_sub(1));
            for w in path.windows(2) {
                let link = topo
                    .link_between(w[0], w[1])
                    .expect("resolve_path returned adjacent nodes");
                cum += topo.link(link).delay;
                delays.push(cum);
            }
            delays
        };
        let mut hops = Vec::with_capacity(topo_delay.len());
        for (i, node) in path.iter().skip(1).enumerate() {
            let jitter: f64 = core.rng().gen_range(0.85..1.15);
            let (name, ip, anonymous) = {
                let n = core.topology().node(*node);
                (n.name.clone(), n.ip_string(), n.anonymous)
            };
            if anonymous {
                hops.push(Hop {
                    index: i + 1,
                    node: *node,
                    name: String::new(),
                    ip: String::new(),
                    rtt: None,
                });
            } else {
                let rtt = (topo_delay[i] * 2).mul_f64(jitter);
                hops.push(Hop {
                    index: i + 1,
                    node: *node,
                    name,
                    ip,
                    rtt: Some(rtt),
                });
            }
        }
        let target = core.topology().node(dst);
        Ok(Traceroute {
            target_name: target.name.clone(),
            target_ip: target.ip_string(),
            hops,
        })
    }

    /// Does the path cross a node with this name? (The paper checks both
    /// traces cross `vncv1rtr2.canarie.ca`.)
    pub fn crosses(&self, name: &str) -> bool {
        self.hops.iter().any(|h| h.name == name)
    }

    /// Names of all non-anonymous hops, in order.
    pub fn hop_names(&self) -> Vec<&str> {
        self.hops
            .iter()
            .filter(|h| !h.name.is_empty())
            .map(|h| h.name.as_str())
            .collect()
    }
}

impl fmt::Display for Traceroute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traceroute to {} ({})", self.target_name, self.target_ip)?;
        for hop in &self.hops {
            match hop.rtt {
                Some(rtt) => writeln!(
                    f,
                    "{:2}  {} ({})  {:.3} ms",
                    hop.index,
                    hop.name,
                    hop.ip,
                    rtt.as_millis_f64()
                )?,
                None => writeln!(f, "{:2}  * * *", hop.index)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::geo::GeoPoint;
    use crate::topology::{LinkParams, TopologyBuilder};
    use crate::units::Bandwidth;

    fn chain() -> (Sim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("src.example.net", GeoPoint::new(49.0, -123.0));
        let r1 = b.router("vncv1rtr2.canarie.ca", GeoPoint::new(49.3, -123.1));
        let r2 = b.router("hidden.core", GeoPoint::new(45.0, -110.0));
        let d = b.host("target.example.com", GeoPoint::new(37.0, -122.0));
        b.set_anonymous(r2);
        b.set_ip(r1, [199, 212, 24, 1]);
        let p = LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(5));
        b.duplex(a, r1, p);
        b.duplex(r1, r2, p);
        b.duplex(r2, d, p);
        (Sim::new(b.build(), 9), a, d)
    }

    #[test]
    fn hops_in_order_with_rtts() {
        let (mut sim, a, d) = chain();
        let tr = Traceroute::run(sim.core(), a, d).unwrap();
        assert_eq!(tr.hops.len(), 3);
        assert_eq!(tr.hops[0].name, "vncv1rtr2.canarie.ca");
        assert_eq!(tr.hops[0].ip, "199.212.24.1");
        assert!(tr.hops[1].rtt.is_none(), "anonymous hop leaks rtt");
        assert!(tr.hops[2].rtt.unwrap() > tr.hops[0].rtt.unwrap());
        assert!(tr.crosses("vncv1rtr2.canarie.ca"));
        assert!(!tr.crosses("pacificwave"));
    }

    #[test]
    fn render_matches_traceroute_style() {
        let (mut sim, a, d) = chain();
        let tr = Traceroute::run(sim.core(), a, d).unwrap();
        let text = tr.to_string();
        assert!(text.starts_with("traceroute to target.example.com"));
        assert!(text.contains("* * *"));
        assert!(text.contains("vncv1rtr2.canarie.ca (199.212.24.1)"));
        assert!(text.contains(" ms"));
    }

    #[test]
    fn hop_names_skip_anonymous() {
        let (mut sim, a, d) = chain();
        let tr = Traceroute::run(sim.core(), a, d).unwrap();
        assert_eq!(
            tr.hop_names(),
            vec!["vncv1rtr2.canarie.ca", "target.example.com"]
        );
    }

    #[test]
    fn traceroute_does_not_disturb_time() {
        let (mut sim, a, d) = chain();
        let before = sim.now();
        let _ = Traceroute::run(sim.core(), a, d).unwrap();
        assert_eq!(sim.now(), before);
    }
}
