//! # netsim — flow-level discrete-event WAN simulator
//!
//! The measurement substrate for the `routing-detours` workspace. The paper
//! ("Mitigating Routing Inefficiencies to Cloud-Storage Providers", Sinha et
//! al., 2016) ran its experiments on the live 2015 Internet from PlanetLab
//! vantage points; this crate replaces that substrate with a deterministic,
//! calibrated simulator that reproduces the *mechanisms* behind the paper's
//! findings:
//!
//! * **Topology** ([`topology`]): hosts, routers, exchanges and datacenters
//!   joined by directed links with capacity, propagation delay and loss.
//! * **Policy routing** ([`routing`]): per-source shortest paths over link
//!   costs, plus explicit route overrides that pin idiosyncratic paths (the
//!   paper's PlanetLab-to-Google egress through the `pacificwave` policer).
//! * **Route oracle** ([`oracle`]): precomputed per-source shortest-path
//!   trees over the flat CSR adjacency, giving zero-allocation warm path
//!   queries and k-detour enumeration at 100k-node scale; the per-query
//!   Dijkstra survives as a bit-identical differential reference.
//! * **Fluid flows** ([`flow`]): active transfers share links max-min fairly;
//!   each flow is additionally capped by a TCP (Mathis) ceiling derived from
//!   path RTT and loss ([`tcp`]), by per-flow policers ([`middlebox`]) and by
//!   host NIC/shaper rates.
//! * **Discrete-event engine** ([`engine`]): binary-heap event core with
//!   deterministic tie-breaking, cooperative processes (state machines) for
//!   protocol logic, timers and parent/child completion notifications.
//! * **RPC sessions** ([`rpc`]): request/response exchanges with server think
//!   time, the building block for the cloud-storage REST APIs.
//! * **Background traffic** ([`background`]): Markov-modulated ON/OFF flow
//!   generators that create the congestion (and run-to-run variance) behind
//!   the paper's error bars.
//! * **Traceroute** ([`trace`]): hop-by-hop path inspection with DNS names,
//!   IPv4 addresses and RTTs, reproducing the paper's Figures 5 and 6.
//! * **Geography** ([`geo`]): great-circle distances and speed-of-light
//!   propagation delays for the paper's Figure 3 map.
//!
//! ## Quick example
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut b = TopologyBuilder::new();
//! let a = b.host("client", GeoPoint::new(49.26, -123.25));
//! let r = b.router("core", GeoPoint::new(51.0, -114.0));
//! let s = b.host("server", GeoPoint::new(37.39, -122.08));
//! b.duplex(a, r, LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(5)));
//! b.duplex(r, s, LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(12)));
//! let topo = b.build();
//!
//! let mut sim = Sim::new(topo, 42);
//! let report = sim.run_transfer(TransferRequest::new(a, s, 10 * MB)).unwrap();
//! assert!(report.elapsed > SimTime::ZERO);
//! ```

pub mod audit;
pub mod background;
pub mod engine;
pub mod error;
pub mod flow;
pub mod geo;
pub mod middlebox;
pub mod oracle;
pub mod routing;
pub mod rpc;
pub mod shard;
pub mod synth;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;

/// Convenient glob-import of the simulator surface.
pub mod prelude {
    pub use crate::background::{BackgroundProfile, BackgroundTraffic};
    pub use crate::engine::{
        Ctx, Event, FlowId, Process, ProcessId, ProgressMode, Sim, TransferReport, TransferRequest,
        Value,
    };
    pub use crate::error::{NetError, NetResult};
    pub use crate::flow::{AllocMode, FlowClass, FlowSpec};
    pub use crate::geo::GeoPoint;
    pub use crate::middlebox::{Policer, PolicerScope};
    pub use crate::oracle::{DetourPath, RouteOracle};
    pub use crate::routing::{RouteOverride, RoutingMode};
    pub use crate::rpc::{Rpc, RpcSpec};
    pub use crate::tcp::TcpParams;
    pub use crate::time::SimTime;
    pub use crate::topology::{LinkId, LinkParams, NodeId, NodeKind, Topology, TopologyBuilder};
    pub use crate::trace::{Hop, Traceroute};
    pub use crate::units::{Bandwidth, GB, KB, MB};
}

pub use prelude::*;
