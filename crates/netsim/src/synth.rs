//! Synthetic WAN generation, for stress tests and scaling benchmarks.
//!
//! The paper's scenario has ~30 nodes; the simulator itself handles far
//! more. [`SynthWan`] builds a classic transit–stub hierarchy: a ring of
//! transit routers with chords, stub routers multihomed to the transit
//! core, and hosts with randomized access rates. [`SynthGlobe`] scales the
//! idea out to a CloudCast-style multi-region, multi-cloud globe: regional
//! backbones, per-cloud private datacenter backbones, and inter-region /
//! inter-cloud peering links whose cost and quality come from seeded
//! peering-quality matrices. Both are seeded and deterministic, so property
//! tests over "any reasonable WAN" are reproducible, and the globe's knobs
//! reach 100k nodes / 1M directed links — the route oracle's stress
//! workload.

use crate::geo::GeoPoint;
use crate::time::SimTime;
use crate::topology::{LinkParams, NodeId, Topology, TopologyBuilder};
use crate::units::Bandwidth;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters of a generated transit–stub WAN.
#[derive(Debug, Clone, Copy)]
pub struct SynthWan {
    /// Transit (core) routers, arranged in a ring with random chords.
    pub transit: usize,
    /// Stub routers, each homed to 1–2 transit routers.
    pub stubs: usize,
    /// Hosts, each attached to a random stub.
    pub hosts: usize,
    /// Core link capacity.
    pub core_mbps: f64,
    /// Host access capacity range (min, max).
    pub access_mbps: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthWan {
    fn default() -> Self {
        SynthWan {
            transit: 6,
            stubs: 12,
            hosts: 24,
            core_mbps: 1000.0,
            access_mbps: (5.0, 100.0),
            seed: 1,
        }
    }
}

/// A generated WAN: the topology plus its host list.
#[derive(Debug, Clone)]
pub struct SynthWorld {
    /// The built topology.
    pub topo: Topology,
    /// All end hosts (sources/sinks for traffic).
    pub hosts: Vec<NodeId>,
}

impl SynthWan {
    /// Generate the WAN.
    pub fn build(&self) -> SynthWorld {
        assert!(self.transit >= 2, "need at least two transit routers");
        assert!(self.stubs >= 1 && self.hosts >= 1);
        assert!(self.access_mbps.0 > 0.0 && self.access_mbps.0 <= self.access_mbps.1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = TopologyBuilder::new();
        let geo = |rng: &mut SmallRng| {
            GeoPoint::new(rng.gen_range(25.0..55.0), rng.gen_range(-125.0..-65.0))
        };

        // Transit ring + chords.
        let transit: Vec<NodeId> = (0..self.transit)
            .map(|i| {
                let loc = geo(&mut rng);
                b.router(&format!("transit{i}"), loc)
            })
            .collect();
        let core = LinkParams::new(
            Bandwidth::from_mbps(self.core_mbps),
            SimTime::from_millis(5),
        );
        for i in 0..self.transit {
            let next = transit[(i + 1) % self.transit];
            // A two-router "ring" would lay the same duplex pair twice.
            if !b.has_link(transit[i], next) {
                b.duplex(transit[i], next, core);
            }
        }
        // Chords: ~one per two transit routers, skipping ring neighbours.
        for _ in 0..(self.transit / 2) {
            let a = rng.gen_range(0..self.transit);
            let c = rng.gen_range(0..self.transit);
            let ring_adjacent =
                c == a || c == (a + 1) % self.transit || (c + 1) % self.transit == a;
            if !ring_adjacent && !b.has_link(transit[a], transit[c]) {
                b.duplex(transit[a], transit[c], core);
            }
        }

        // Stubs, single- or dual-homed.
        let stub_link = LinkParams::new(
            Bandwidth::from_mbps(self.core_mbps / 2.0),
            SimTime::from_millis(3),
        );
        let stubs: Vec<NodeId> = (0..self.stubs)
            .map(|i| {
                let loc = geo(&mut rng);
                let s = b.router(&format!("stub{i}"), loc);
                let home = transit[rng.gen_range(0..self.transit)];
                b.duplex(s, home, stub_link);
                if rng.gen_bool(0.4) {
                    let second = transit[rng.gen_range(0..self.transit)];
                    if second != home && !b.has_link(s, second) {
                        b.duplex(s, second, stub_link);
                    }
                }
                s
            })
            .collect();

        // Hosts.
        let hosts: Vec<NodeId> = (0..self.hosts)
            .map(|i| {
                let loc = geo(&mut rng);
                let h = b.host(&format!("host{i}"), loc);
                let stub = stubs[rng.gen_range(0..self.stubs)];
                let mbps = rng.gen_range(self.access_mbps.0..=self.access_mbps.1);
                b.duplex(
                    h,
                    stub,
                    LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(1)),
                );
                h
            })
            .collect();

        SynthWorld {
            topo: b.build(),
            hosts,
        }
    }
}

/// Parameters of a generated multi-region, multi-cloud globe.
///
/// Every region has a router backbone (ring + chords), client hosts
/// multihomed to `host_degree` distinct regional routers, and one
/// datacenter frontend per cloud. Regions are joined by a peering ring plus
/// `peer_extra` random peerings per region; each cloud additionally runs a
/// private backbone ring over its own frontends. Link costs for peerings
/// come from two seeded **quality matrices** (1 = good, 3 = poor), the
/// CloudCast-style inter-cloud/inter-region connectivity characterisation.
#[derive(Debug, Clone, Copy)]
pub struct SynthGlobe {
    /// Geographic regions (≥ 2), spread around the globe.
    pub regions: usize,
    /// Cloud providers (≥ 1); each gets one datacenter frontend per region.
    pub clouds: usize,
    /// Backbone routers per region (≥ 2), in a ring with chords.
    pub routers_per_region: usize,
    /// Client hosts per region.
    pub hosts_per_region: usize,
    /// Distinct regional routers each host is attached to
    /// (1 ≤ host_degree ≤ routers_per_region).
    pub host_degree: usize,
    /// Extra inter-region peerings per region beyond the connectivity ring.
    pub peer_extra: usize,
    /// Backbone link capacity.
    pub backbone_gbps: f64,
    /// Host access capacity range (min, max) in Mbps.
    pub access_mbps: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthGlobe {
    fn default() -> Self {
        SynthGlobe {
            regions: 4,
            clouds: 3,
            routers_per_region: 4,
            hosts_per_region: 12,
            host_degree: 2,
            peer_extra: 2,
            backbone_gbps: 100.0,
            access_mbps: (10.0, 500.0),
            seed: 1,
        }
    }
}

impl SynthGlobe {
    /// The stress configuration: ~101k nodes, ~1.0M directed links.
    pub fn stress(seed: u64) -> Self {
        SynthGlobe {
            regions: 25,
            clouds: 4,
            routers_per_region: 40,
            hosts_per_region: 4000,
            host_degree: 5,
            peer_extra: 3,
            seed,
            ..SynthGlobe::default()
        }
    }

    /// Scale `hosts_per_region` so the globe lands near `nodes` total nodes
    /// (other knobs untouched).
    pub fn with_target_nodes(mut self, nodes: usize) -> Self {
        let fixed = self.routers_per_region + self.clouds;
        let per_region = (nodes / self.regions).saturating_sub(fixed);
        self.hosts_per_region = per_region.max(1);
        self
    }
}

/// A generated globe: the topology plus its population indices.
#[derive(Debug, Clone)]
pub struct GlobeWorld {
    /// The built topology.
    pub topo: Topology,
    /// All client hosts, region-major order.
    pub hosts: Vec<NodeId>,
    /// `frontends[cloud][region]` is that cloud's datacenter in the region.
    pub frontends: Vec<Vec<NodeId>>,
    /// Symmetric inter-region peering quality, 1 (good) ..= 3 (poor).
    pub region_quality: Vec<Vec<u8>>,
    /// Symmetric inter-cloud peering quality, 1 (good) ..= 3 (poor).
    pub cloud_quality: Vec<Vec<u8>>,
}

impl SynthGlobe {
    /// Generate the globe.
    // Index loops are deliberate: every `rng` draw is ordered by (region,
    // cloud, host) index, and that order is the generated world's
    // determinism contract — iterator rewrites that reorder or skip draws
    // would shift every seeded topology.
    #[allow(clippy::needless_range_loop)]
    pub fn build(&self) -> GlobeWorld {
        assert!(self.regions >= 2, "need at least two regions");
        assert!(self.clouds >= 1, "need at least one cloud");
        assert!(
            self.routers_per_region >= 2,
            "need at least two routers per region"
        );
        assert!(
            (1..=self.routers_per_region).contains(&self.host_degree),
            "host_degree must be in 1..=routers_per_region"
        );
        assert!(self.access_mbps.0 > 0.0 && self.access_mbps.0 <= self.access_mbps.1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = TopologyBuilder::new();
        let backbone = Bandwidth::from_gbps(self.backbone_gbps);

        // Region centres around the globe; nodes jitter around them. (A
        // generator must never call `TopologyBuilder::has_link` — it is
        // O(links) and this loop lays a million of them — so every link
        // that could repeat is deduplicated through a local set instead.)
        let centres: Vec<GeoPoint> = (0..self.regions)
            .map(|r| {
                let lon = -180.0 + 360.0 * (r as f64 + 0.5) / self.regions as f64;
                GeoPoint::new(rng.gen_range(-45.0..60.0), lon)
            })
            .collect();
        let jitter = |rng: &mut SmallRng, c: GeoPoint| {
            let mut lon = c.lon + rng.gen_range(-6.0f64..6.0);
            if lon > 180.0 {
                lon -= 360.0;
            } else if lon < -180.0 {
                lon += 360.0;
            }
            GeoPoint::new(
                (c.lat + rng.gen_range(-6.0f64..6.0)).clamp(-80.0, 80.0),
                lon,
            )
        };

        // Peering-quality matrices, symmetric, 1 (good) ..= 3 (poor).
        let symmetric = |n: usize, rng: &mut SmallRng| -> Vec<Vec<u8>> {
            let mut q = vec![vec![1u8; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = rng.gen_range(1..=3u8);
                    q[i][j] = v;
                    q[j][i] = v;
                }
            }
            q
        };
        let region_quality = symmetric(self.regions, &mut rng);
        let cloud_quality = symmetric(self.clouds, &mut rng);

        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        let dedup_duplex = |b: &mut TopologyBuilder,
                            seen: &mut HashSet<(NodeId, NodeId)>,
                            x: NodeId,
                            y: NodeId,
                            p: LinkParams| {
            if x != y && seen.insert((x.min(y), x.max(y))) {
                b.duplex(x, y, p);
            }
        };

        // Regional router backbones: ring + one chord per router.
        let mut routers: Vec<Vec<NodeId>> = Vec::with_capacity(self.regions);
        for r in 0..self.regions {
            let rs: Vec<NodeId> = (0..self.routers_per_region)
                .map(|i| {
                    let loc = jitter(&mut rng, centres[r]);
                    b.router(&format!("r{r}-core{i}"), loc)
                })
                .collect();
            let intra = LinkParams::geo(backbone).with_cost(5);
            for i in 0..rs.len() {
                dedup_duplex(&mut b, &mut seen, rs[i], rs[(i + 1) % rs.len()], intra);
            }
            for i in 0..rs.len() {
                let j = rng.gen_range(0..rs.len());
                dedup_duplex(&mut b, &mut seen, rs[i], rs[j], intra);
            }
            routers.push(rs);
        }

        // Cloud datacenter frontends: two uplinks into the regional core.
        let mut frontends: Vec<Vec<NodeId>> = vec![Vec::with_capacity(self.regions); self.clouds];
        for r in 0..self.regions {
            for c in 0..self.clouds {
                let loc = jitter(&mut rng, centres[r]);
                let dc = b.datacenter(&format!("r{r}-cloud{c}"), loc);
                let uplink = LinkParams::geo(backbone).with_cost(6);
                let first = rng.gen_range(0..self.routers_per_region);
                let mut second = rng.gen_range(0..self.routers_per_region);
                if second == first {
                    second = (first + 1) % self.routers_per_region;
                }
                b.duplex(dc, routers[r][first], uplink);
                b.duplex(dc, routers[r][second], uplink);
                frontends[c].push(dc);
            }
        }

        // Hosts, multihomed to `host_degree` distinct regional routers via
        // a partial Fisher–Yates over a reusable index buffer.
        let mut hosts = Vec::with_capacity(self.regions * self.hosts_per_region);
        let mut idx: Vec<usize> = (0..self.routers_per_region).collect();
        for r in 0..self.regions {
            for h in 0..self.hosts_per_region {
                let loc = jitter(&mut rng, centres[r]);
                let host = b.host(&format!("r{r}-host{h}"), loc);
                let mbps = rng.gen_range(self.access_mbps.0..=self.access_mbps.1);
                let access = LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(1));
                for j in 0..self.host_degree {
                    let k = rng.gen_range(j..idx.len());
                    idx.swap(j, k);
                    b.duplex(host, routers[r][idx[j]], access);
                }
                hosts.push(host);
            }
        }

        // Inter-region peering: a connectivity ring plus `peer_extra`
        // random peerings per region, costed by the quality matrix.
        let peer = |q: u8| LinkParams::geo(backbone).with_cost(10 + 10 * q as u32);
        for r in 0..self.regions {
            let n = (r + 1) % self.regions;
            dedup_duplex(
                &mut b,
                &mut seen,
                routers[r][0],
                routers[n][0],
                peer(region_quality[r][n]),
            );
            for _ in 0..self.peer_extra {
                let o = rng.gen_range(0..self.regions);
                if o == r {
                    continue;
                }
                let a = routers[r][rng.gen_range(0..self.routers_per_region)];
                let z = routers[o][rng.gen_range(0..self.routers_per_region)];
                dedup_duplex(&mut b, &mut seen, a, z, peer(region_quality[r][o]));
            }
        }

        // Per-cloud private backbones (a ring over the cloud's frontends:
        // cheap, bypasses the public inter-region peerings), and same-region
        // inter-cloud peering links costed by the cloud quality matrix.
        let private = LinkParams::geo(backbone).with_cost(4);
        for fs in &frontends {
            for r in 0..self.regions {
                dedup_duplex(
                    &mut b,
                    &mut seen,
                    fs[r],
                    fs[(r + 1) % self.regions],
                    private,
                );
            }
        }
        for r in 0..self.regions {
            for c1 in 0..self.clouds {
                for c2 in (c1 + 1)..self.clouds {
                    if rng.gen_bool(0.5) {
                        dedup_duplex(
                            &mut b,
                            &mut seen,
                            frontends[c1][r],
                            frontends[c2][r],
                            LinkParams::geo(backbone).with_cost(8 * cloud_quality[c1][c2] as u32),
                        );
                    }
                }
            }
        }

        GlobeWorld {
            topo: b.build(),
            hosts,
            frontends,
            region_quality,
            cloud_quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, TransferRequest};
    use crate::routing::RoutingTable;
    use crate::units::MB;

    #[test]
    fn generated_wan_is_fully_connected() {
        let world = SynthWan::default().build();
        let mut rt = RoutingTable::new();
        for &a in &world.hosts {
            for &b in &world.hosts {
                if a != b {
                    rt.path(&world.topo, a, b).unwrap_or_else(|e| {
                        panic!("no route {a}->{b}: {e}");
                    });
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w1 = SynthWan::default().build();
        let w2 = SynthWan::default().build();
        assert_eq!(w1.topo.nodes().len(), w2.topo.nodes().len());
        assert_eq!(w1.topo.links().len(), w2.topo.links().len());
        let w3 = SynthWan {
            seed: 99,
            ..SynthWan::default()
        }
        .build();
        // Different seed: (almost surely) different link structure.
        let caps = |w: &SynthWorld| -> Vec<u64> {
            w.topo
                .links()
                .iter()
                .map(|l| l.capacity.bytes_per_sec() as u64)
                .collect()
        };
        assert_ne!(caps(&w1), caps(&w3));
    }

    #[test]
    fn scales_to_hundreds_of_nodes() {
        let world = SynthWan {
            transit: 16,
            stubs: 64,
            hosts: 200,
            ..SynthWan::default()
        }
        .build();
        assert!(world.topo.nodes().len() >= 280);
        // A transfer across the big WAN completes.
        let mut sim = Sim::new(world.topo.clone(), 3);
        let report = sim
            .run_transfer(TransferRequest::new(
                world.hosts[0],
                world.hosts[199],
                10 * MB,
            ))
            .unwrap();
        assert!(report.elapsed.as_secs_f64() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two transit")]
    fn tiny_core_rejected() {
        SynthWan {
            transit: 1,
            ..SynthWan::default()
        }
        .build();
    }

    #[test]
    fn globe_hosts_reach_every_frontend() {
        let world = SynthGlobe::default().build();
        let mut rt = RoutingTable::new();
        assert_eq!(world.hosts.len(), 4 * 12);
        assert_eq!(world.frontends.len(), 3);
        for fs in &world.frontends {
            assert_eq!(fs.len(), 4);
        }
        for &h in world.hosts.iter().step_by(5) {
            for fs in &world.frontends {
                for &dc in fs {
                    rt.path(&world.topo, h, dc).unwrap_or_else(|e| {
                        panic!("no route {h}->{dc}: {e}");
                    });
                    rt.path(&world.topo, dc, h).unwrap_or_else(|e| {
                        panic!("no route {dc}->{h}: {e}");
                    });
                }
            }
        }
    }

    #[test]
    // Symmetry needs both q[i][j] and q[j][i]; index loops read clearer here.
    #[allow(clippy::needless_range_loop)]
    fn globe_quality_matrices_are_symmetric_and_bounded() {
        let world = SynthGlobe::default().build();
        for q in [&world.region_quality, &world.cloud_quality] {
            for i in 0..q.len() {
                for j in 0..q.len() {
                    assert_eq!(q[i][j], q[j][i]);
                    assert!((1..=3).contains(&q[i][j]) || i == j);
                }
            }
        }
    }

    #[test]
    fn globe_deterministic_per_seed() {
        let costs =
            |w: &GlobeWorld| -> Vec<u32> { w.topo.links().iter().map(|l| l.cost).collect() };
        let w1 = SynthGlobe::default().build();
        let w2 = SynthGlobe::default().build();
        assert_eq!(costs(&w1), costs(&w2));
        assert_eq!(w1.region_quality, w2.region_quality);
        let w3 = SynthGlobe {
            seed: 99,
            ..SynthGlobe::default()
        }
        .build();
        assert_ne!(costs(&w1), costs(&w3));
    }

    #[test]
    fn globe_scales_and_transfers() {
        let world = SynthGlobe {
            regions: 6,
            clouds: 3,
            routers_per_region: 8,
            hosts_per_region: 100,
            host_degree: 3,
            ..SynthGlobe::default()
        }
        .build();
        assert_eq!(world.topo.nodes().len(), 6 * (8 + 3 + 100));
        // host_degree 3 dominates: at least 2*3 directed links per host.
        assert!(world.topo.links().len() >= 6 * 100 * 6);
        let mut sim = Sim::new(world.topo.clone(), 3);
        let report = sim
            .run_transfer(TransferRequest::new(
                world.hosts[0],
                world.frontends[2][5],
                10 * MB,
            ))
            .unwrap();
        assert!(report.elapsed.as_secs_f64() > 0.0);
    }

    #[test]
    fn globe_target_nodes_lands_close() {
        let g = SynthGlobe::default().with_target_nodes(2000);
        let world = g.build();
        let n = world.topo.nodes().len();
        assert!((1800..=2200).contains(&n), "{n}");
    }

    /// The stress knobs must reach the oracle's acceptance scale. (Knob
    /// arithmetic only — actually building ~101k nodes / ~1M links is the
    /// bench's and the ignored alloc test's job.)
    #[test]
    fn globe_stress_knobs_reach_100k_nodes_1m_links() {
        let g = SynthGlobe::stress(7);
        let nodes = g.regions * (g.routers_per_region + g.clouds + g.hosts_per_region);
        let host_links = g.regions * g.hosts_per_region * g.host_degree * 2;
        assert!(nodes >= 100_000, "{nodes}");
        assert!(host_links >= 1_000_000, "{host_links}");
    }
}
