//! Synthetic WAN generation, for stress tests and scaling benchmarks.
//!
//! The paper's scenario has ~30 nodes; the simulator itself handles far
//! more. [`SynthWan`] builds a classic transit–stub hierarchy: a ring of
//! transit routers with chords, stub routers multihomed to the transit
//! core, and hosts with randomized access rates — all seeded and
//! deterministic, so property tests over "any reasonable WAN" are
//! reproducible.

use crate::geo::GeoPoint;
use crate::time::SimTime;
use crate::topology::{LinkParams, NodeId, Topology, TopologyBuilder};
use crate::units::Bandwidth;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated transit–stub WAN.
#[derive(Debug, Clone, Copy)]
pub struct SynthWan {
    /// Transit (core) routers, arranged in a ring with random chords.
    pub transit: usize,
    /// Stub routers, each homed to 1–2 transit routers.
    pub stubs: usize,
    /// Hosts, each attached to a random stub.
    pub hosts: usize,
    /// Core link capacity.
    pub core_mbps: f64,
    /// Host access capacity range (min, max).
    pub access_mbps: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthWan {
    fn default() -> Self {
        SynthWan {
            transit: 6,
            stubs: 12,
            hosts: 24,
            core_mbps: 1000.0,
            access_mbps: (5.0, 100.0),
            seed: 1,
        }
    }
}

/// A generated WAN: the topology plus its host list.
#[derive(Debug, Clone)]
pub struct SynthWorld {
    /// The built topology.
    pub topo: Topology,
    /// All end hosts (sources/sinks for traffic).
    pub hosts: Vec<NodeId>,
}

impl SynthWan {
    /// Generate the WAN.
    pub fn build(&self) -> SynthWorld {
        assert!(self.transit >= 2, "need at least two transit routers");
        assert!(self.stubs >= 1 && self.hosts >= 1);
        assert!(self.access_mbps.0 > 0.0 && self.access_mbps.0 <= self.access_mbps.1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = TopologyBuilder::new();
        let geo = |rng: &mut SmallRng| {
            GeoPoint::new(rng.gen_range(25.0..55.0), rng.gen_range(-125.0..-65.0))
        };

        // Transit ring + chords.
        let transit: Vec<NodeId> = (0..self.transit)
            .map(|i| {
                let loc = geo(&mut rng);
                b.router(&format!("transit{i}"), loc)
            })
            .collect();
        let core = LinkParams::new(
            Bandwidth::from_mbps(self.core_mbps),
            SimTime::from_millis(5),
        );
        for i in 0..self.transit {
            let next = transit[(i + 1) % self.transit];
            // A two-router "ring" would lay the same duplex pair twice.
            if !b.has_link(transit[i], next) {
                b.duplex(transit[i], next, core);
            }
        }
        // Chords: ~one per two transit routers, skipping ring neighbours.
        for _ in 0..(self.transit / 2) {
            let a = rng.gen_range(0..self.transit);
            let c = rng.gen_range(0..self.transit);
            let ring_adjacent =
                c == a || c == (a + 1) % self.transit || (c + 1) % self.transit == a;
            if !ring_adjacent && !b.has_link(transit[a], transit[c]) {
                b.duplex(transit[a], transit[c], core);
            }
        }

        // Stubs, single- or dual-homed.
        let stub_link = LinkParams::new(
            Bandwidth::from_mbps(self.core_mbps / 2.0),
            SimTime::from_millis(3),
        );
        let stubs: Vec<NodeId> = (0..self.stubs)
            .map(|i| {
                let loc = geo(&mut rng);
                let s = b.router(&format!("stub{i}"), loc);
                let home = transit[rng.gen_range(0..self.transit)];
                b.duplex(s, home, stub_link);
                if rng.gen_bool(0.4) {
                    let second = transit[rng.gen_range(0..self.transit)];
                    if second != home && !b.has_link(s, second) {
                        b.duplex(s, second, stub_link);
                    }
                }
                s
            })
            .collect();

        // Hosts.
        let hosts: Vec<NodeId> = (0..self.hosts)
            .map(|i| {
                let loc = geo(&mut rng);
                let h = b.host(&format!("host{i}"), loc);
                let stub = stubs[rng.gen_range(0..self.stubs)];
                let mbps = rng.gen_range(self.access_mbps.0..=self.access_mbps.1);
                b.duplex(
                    h,
                    stub,
                    LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(1)),
                );
                h
            })
            .collect();

        SynthWorld {
            topo: b.build(),
            hosts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, TransferRequest};
    use crate::routing::RoutingTable;
    use crate::units::MB;

    #[test]
    fn generated_wan_is_fully_connected() {
        let world = SynthWan::default().build();
        let mut rt = RoutingTable::new();
        for &a in &world.hosts {
            for &b in &world.hosts {
                if a != b {
                    rt.path(&world.topo, a, b).unwrap_or_else(|e| {
                        panic!("no route {a}->{b}: {e}");
                    });
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w1 = SynthWan::default().build();
        let w2 = SynthWan::default().build();
        assert_eq!(w1.topo.nodes().len(), w2.topo.nodes().len());
        assert_eq!(w1.topo.links().len(), w2.topo.links().len());
        let w3 = SynthWan {
            seed: 99,
            ..SynthWan::default()
        }
        .build();
        // Different seed: (almost surely) different link structure.
        let caps = |w: &SynthWorld| -> Vec<u64> {
            w.topo
                .links()
                .iter()
                .map(|l| l.capacity.bytes_per_sec() as u64)
                .collect()
        };
        assert_ne!(caps(&w1), caps(&w3));
    }

    #[test]
    fn scales_to_hundreds_of_nodes() {
        let world = SynthWan {
            transit: 16,
            stubs: 64,
            hosts: 200,
            ..SynthWan::default()
        }
        .build();
        assert!(world.topo.nodes().len() >= 280);
        // A transfer across the big WAN completes.
        let mut sim = Sim::new(world.topo.clone(), 3);
        let report = sim
            .run_transfer(TransferRequest::new(
                world.hosts[0],
                world.hosts[199],
                10 * MB,
            ))
            .unwrap();
        assert!(report.elapsed.as_secs_f64() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two transit")]
    fn tiny_core_rejected() {
        SynthWan {
            transit: 1,
            ..SynthWan::default()
        }
        .build();
    }
}
