//! Stochastic background cross-traffic.
//!
//! The paper's error bars — one standard deviation over five timed runs —
//! come from real cross traffic on shared peering links. We reproduce that
//! with a two-state Markov-modulated ON/OFF generator per congested path:
//! in the *calm* state the generator maintains a small number of concurrent
//! bulk flows; in the *busy* state, a larger number. Dwell times are
//! exponential, flow sizes log-normal-ish (exponential of a Gaussian), and
//! everything draws from the simulation's seeded PRNG, so each measurement
//! run (different seed) sees different congestion — exactly like back-to-back
//! runs on a real WAN.

use crate::engine::{Ctx, Event, Process};
use crate::flow::{FlowClass, FlowSpec};
use crate::time::SimTime;
use crate::topology::NodeId;
use crate::units::MB;
use rand::Rng;

/// Configuration of one background generator.
#[derive(Debug, Clone)]
pub struct BackgroundProfile {
    /// Source of the cross traffic.
    pub src: NodeId,
    /// Sink of the cross traffic.
    pub dst: NodeId,
    /// Concurrent flows maintained in the calm state.
    pub calm_flows: u32,
    /// Concurrent flows maintained in the busy state.
    pub busy_flows: u32,
    /// Mean dwell time in the calm state.
    pub calm_dwell: SimTime,
    /// Mean dwell time in the busy state.
    pub busy_dwell: SimTime,
    /// Mean size of one cross-traffic flow, bytes.
    pub mean_flow_bytes: u64,
}

impl BackgroundProfile {
    /// A moderate profile: light steady load with occasional busy bursts.
    pub fn moderate(src: NodeId, dst: NodeId) -> Self {
        BackgroundProfile {
            src,
            dst,
            calm_flows: 1,
            busy_flows: 4,
            calm_dwell: SimTime::from_secs(40),
            busy_dwell: SimTime::from_secs(15),
            mean_flow_bytes: 40 * MB,
        }
    }

    /// A heavy profile: persistent competition with violent bursts — used on
    /// the paper's pathological Purdue→Google peering.
    pub fn heavy(src: NodeId, dst: NodeId) -> Self {
        BackgroundProfile {
            src,
            dst,
            calm_flows: 4,
            busy_flows: 12,
            calm_dwell: SimTime::from_secs(30),
            busy_dwell: SimTime::from_secs(30),
            mean_flow_bytes: 80 * MB,
        }
    }

    /// Scale both flow counts by a factor (ablation A3 sweeps this).
    pub fn scaled(mut self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        self.calm_flows = ((self.calm_flows as f64) * k).round() as u32;
        self.busy_flows = ((self.busy_flows as f64) * k)
            .round()
            .max(self.calm_flows as f64) as u32;
        self
    }
}

const STATE_TIMER: u64 = 0xB6_0001;

/// The generator process. Spawn detached: it never finishes.
pub struct BackgroundTraffic {
    profile: BackgroundProfile,
    busy: bool,
    in_flight: u32,
}

impl BackgroundTraffic {
    /// Build from a profile.
    pub fn new(profile: BackgroundProfile) -> Self {
        BackgroundTraffic {
            profile,
            busy: false,
            in_flight: 0,
        }
    }

    fn target(&self) -> u32 {
        if self.busy {
            self.profile.busy_flows
        } else {
            self.profile.calm_flows
        }
    }

    fn sample_dwell(&self, ctx: &mut Ctx<'_>) -> SimTime {
        let mean = if self.busy {
            self.profile.busy_dwell
        } else {
            self.profile.calm_dwell
        };
        // Exponential via inverse CDF.
        let u: f64 = ctx.rng().gen_range(1e-9..1.0);
        mean.mul_f64(-u.ln())
    }

    fn sample_size(&self, ctx: &mut Ctx<'_>) -> u64 {
        // exp(N(0, 0.75)) has mean ~exp(0.28); normalize to the mean.
        let g: f64 = {
            // Box-Muller from two uniforms, deterministic given the seed.
            let u1: f64 = ctx.rng().gen_range(1e-12..1.0);
            let u2: f64 = ctx.rng().gen_range(0.0..1.0);
            (-2.0_f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let sigma = 0.75_f64;
        let factor = (sigma * g - sigma * sigma / 2.0).exp();
        ((self.profile.mean_flow_bytes as f64) * factor).max(64.0 * 1024.0) as u64
    }

    fn refill(&mut self, ctx: &mut Ctx<'_>) {
        while self.in_flight < self.target() {
            let bytes = self.sample_size(ctx);
            let spec = FlowSpec::new(
                self.profile.src,
                self.profile.dst,
                bytes,
                FlowClass::Background,
            )
            .reuse_connection();
            match ctx.start_flow(spec) {
                Ok(_) => self.in_flight += 1,
                Err(_) => break, // mis-scenario'd generator: stay silent
            }
        }
    }
}

impl Process for BackgroundTraffic {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                // Randomize the initial state so concurrent generators are
                // not phase-locked.
                self.busy = ctx.rng().gen_bool(0.3);
                self.refill(ctx);
                let dwell = self.sample_dwell(ctx);
                ctx.set_timer(dwell, STATE_TIMER);
            }
            Event::Timer { tag: STATE_TIMER } => {
                self.busy = !self.busy;
                self.refill(ctx);
                let dwell = self.sample_dwell(ctx);
                ctx.set_timer(dwell, STATE_TIMER);
            }
            Event::FlowCompleted { .. } | Event::FlowFailed { .. } => {
                self.in_flight = self.in_flight.saturating_sub(1);
                self.refill(ctx);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "background-traffic"
    }

    fn digest_into(&self, d: &mut crate::audit::Digest) {
        d.write_bool(self.busy);
        d.write_u64(self.in_flight as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, TransferRequest};
    use crate::geo::GeoPoint;
    use crate::topology::{LinkParams, TopologyBuilder};
    use crate::units::Bandwidth;

    /// Topology: two hosts sharing a 40 Mbps link with a background pair.
    fn contended() -> (crate::topology::Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let r1 = b.router("r1", GeoPoint::new(0.5, 0.5));
        let r2 = b.router("r2", GeoPoint::new(0.6, 0.6));
        let c = b.host("c", GeoPoint::new(1.0, 1.0));
        let bg_src = b.host("bg-src", GeoPoint::new(0.4, 0.4));
        let bg_dst = b.host("bg-dst", GeoPoint::new(1.1, 1.1));
        let fat = LinkParams::new(Bandwidth::from_mbps(1000.0), SimTime::from_millis(2));
        let thin = LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(10));
        b.duplex(a, r1, fat);
        b.duplex(r1, r2, thin); // shared bottleneck
        b.duplex(r2, c, fat);
        b.duplex(bg_src, r1, fat);
        b.duplex(r2, bg_dst, fat);
        (b.build(), a, c, bg_src, bg_dst)
    }

    #[test]
    fn background_slows_foreground() {
        let (t, a, c, bs, bd) = contended();
        let clean = Sim::new(t.clone(), 1)
            .run_transfer(TransferRequest::new(a, c, 50 * MB))
            .unwrap()
            .elapsed;
        let mut sim = Sim::new(t, 1);
        sim.spawn_detached(Box::new(BackgroundTraffic::new(BackgroundProfile::heavy(
            bs, bd,
        ))));
        let contended = sim
            .run_transfer(TransferRequest::new(a, c, 50 * MB))
            .unwrap()
            .elapsed;
        assert!(
            contended > clean.mul_f64(1.3),
            "background had no effect: clean {clean}, contended {contended}"
        );
    }

    #[test]
    fn different_seeds_give_different_times() {
        let (t, a, c, bs, bd) = contended();
        let mut times = Vec::new();
        for seed in 0..5 {
            let mut sim = Sim::new(t.clone(), seed);
            sim.spawn_detached(Box::new(BackgroundTraffic::new(BackgroundProfile::heavy(
                bs, bd,
            ))));
            times.push(
                sim.run_transfer(TransferRequest::new(a, c, 30 * MB))
                    .unwrap()
                    .elapsed,
            );
        }
        let distinct: std::collections::HashSet<_> = times.iter().map(|t| t.as_nanos()).collect();
        assert!(
            distinct.len() >= 3,
            "times suspiciously identical: {times:?}"
        );
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let (t, a, c, bs, bd) = contended();
        let run = |seed| {
            let mut sim = Sim::new(t.clone(), seed);
            sim.spawn_detached(Box::new(BackgroundTraffic::new(
                BackgroundProfile::moderate(bs, bd),
            )));
            sim.run_transfer(TransferRequest::new(a, c, 30 * MB))
                .unwrap()
                .elapsed
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn scaled_profile() {
        let p = BackgroundProfile::moderate(NodeId(0), NodeId(1)).scaled(2.0);
        assert_eq!(p.calm_flows, 2);
        assert_eq!(p.busy_flows, 8);
        let z = BackgroundProfile::moderate(NodeId(0), NodeId(1)).scaled(0.0);
        assert_eq!(z.calm_flows, 0);
        assert_eq!(z.busy_flows, 0);
    }
}
