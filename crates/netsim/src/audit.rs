//! Audit hooks and state digests for deterministic simulation checking.
//!
//! The `simcheck` harness (TigerBeetle/FoundationDB-style deterministic
//! simulation testing) needs two things from the engine:
//!
//! * a way to observe the full allocation state after **every** processed
//!   event, so invariant oracles (byte conservation, capacity limits,
//!   max-min fairness, time monotonicity) can be checked continuously —
//!   that is [`AuditHook`], installed with
//!   [`Sim::set_audit_hook`](crate::engine::Sim::set_audit_hook); and
//! * a cheap, deterministic fingerprint of the complete simulator state, so
//!   two executions of the same seeded scenario can be compared bit for bit
//!   — that is [`Digest`] plus
//!   [`Sim::state_digest`](crate::engine::Sim::state_digest).
//!
//! Everything here is ordinary release code: hooks cost one branch per
//! event when absent, and digests are computed only on demand.

use crate::time::SimTime;

/// Incremental FNV-1a (64-bit) hasher used for state digests.
///
/// FNV is not cryptographic; it is chosen because it is trivially portable,
/// has no platform-dependent behavior, and matches the seed-derivation
/// hashing already used elsewhere in the workspace. Floats are folded by
/// their IEEE-754 bit patterns, so two states digest equal iff every field
/// is bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl Digest {
    /// Fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Fold one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.state ^= v as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Fold a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Fold a u64 (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a bool.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Fold an f64 by bit pattern (exact, not approximate).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Fold a simulated time.
    pub fn write_time(&mut self, t: SimTime) {
        self.write_u64(t.as_nanos());
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// Observer invoked by the engine while a root process runs.
///
/// `after_event` fires once after every dispatched event (and once at run
/// start, before the first event), with a read-only [`AuditView`] over the
/// engine state. `flow_delivered` fires at the moment a flow's last byte is
/// delivered, *before* the post-event view — oracles use it to close their
/// per-flow conservation ledgers.
pub trait AuditHook {
    /// Inspect the engine state after an event was dispatched.
    fn after_event(&mut self, view: &crate::engine::AuditView<'_>);

    /// A flow fully delivered `bytes` payload bytes at simulated time `now`.
    fn flow_delivered(&mut self, _flow: u64, _bytes: u64, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = Digest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn float_digest_is_bit_exact() {
        let mut a = Digest::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Digest::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 in f64; the digest must see the difference.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
