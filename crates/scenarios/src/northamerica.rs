//! The calibrated North-America scenario.
//!
//! Every capacity below is reverse-engineered from the paper's measured
//! transfer times (100 MB = 800 Mbit; rate = 800 / seconds Mbps):
//!
//! | Paper measurement (100 MB)            | Implied rate | Mechanism here |
//! |---------------------------------------|--------------|----------------|
//! | UBC→Drive direct 86.9 s               | ~9.2 Mbps    | per-flow policer on PlanetLab traffic at the pacificwave→Google hand-off |
//! | UBC→UAlberta rsync ~19 s              | ~42 Mbps     | UBC PlanetLab slice egress shaping (43 Mbps access link) |
//! | UAlberta→Drive ~17 s                  | ~47 Mbps     | CANARIE→Google direct peering (47 Mbps per the era's measurements) |
//! | UBC→UMich ~119 s                      | ~6.7 Mbps    | per-flow policed GREN transit between the testbeds |
//! | UMich→Drive ~13 s                     | ~60 Mbps     | Internet2→Google peering |
//! | Purdue→Drive direct 748 s             | ~1.1 Mbps    | 8 Mbps commodity Google peering shared with heavy MMPP background |
//! | Purdue→{UAlberta,UMich} ~175 s        | ~4.6 Mbps    | Purdue PlanetLab slice egress shaping |
//! | Purdue→Dropbox direct 177.9 s (σ36)   | ~4.5 Mbps    | egress shaping + moderate background on the east Dropbox ingress |
//! | Purdue→OneDrive direct 387.7 s (σ118) | ~2.1 Mbps    | 6 Mbps east OneDrive ingress shared with heavy background |
//! | UCLA→anything slow                    | ~2.3 Mbps    | UCLA PlanetLab node last-mile shaping (the paper's §III-C diagnosis) |
//! | UBC→Dropbox direct fast               | ~40 Mbps     | clean west commodity ingress at Ashburn |
//! | UBC→OneDrive direct fast              | ~32 Mbps     | clean pacificwave ingress at Seattle |
//!
//! The UBC→Google pin through pacificwave and the UBC↔UMich GREN transit
//! are [`netsim::routing::RouteOverride`]s: the paper could not explain
//! them from metrics either — they were BGP policy visible only through
//! traceroute (its Figures 5 and 6), which [`crate::experiments`]
//! regenerates.

use cloudstore::{Provider, ProviderKind};
use detour_core::{ClientSpec, Hop, SimFactory};
use netsim::background::{BackgroundProfile, BackgroundTraffic};
use netsim::engine::Sim;
use netsim::flow::FlowClass;
use netsim::geo::places;
use netsim::middlebox::Policer;
use netsim::prelude::*;
use netsim::routing::RouteOverride;
use netsim::units::MB;

/// Calibration constants (Mbps unless noted) — see the module docs.
pub mod calibration {
    /// UBC PlanetLab slice egress (drives UBC→UAlberta ≈ 19 s / 100 MB).
    pub const UBC_ACCESS_MBPS: f64 = 43.0;
    /// Purdue PlanetLab slice egress (drives Purdue→DTN ≈ 175 s / 100 MB).
    pub const PURDUE_ACCESS_MBPS: f64 = 4.6;
    /// UCLA PlanetLab last-mile (the paper's §III-C bottleneck).
    pub const UCLA_ACCESS_MBPS: f64 = 2.3;
    /// UMich PlanetLab slice egress.
    pub const UMICH_ACCESS_MBPS: f64 = 65.0;
    /// Per-flow policing of PlanetLab traffic at the pacificwave→Google
    /// hand-off (drives UBC→Drive direct ≈ 87 s / 100 MB).
    pub const PACIFICWAVE_POLICE_MBPS: f64 = 9.3;
    /// CANARIE→Google direct peering (UAlberta→Drive ≈ 17 s / 100 MB).
    pub const CANARIE_GOOGLE_MBPS: f64 = 47.0;
    /// Internet2→Google peering (UMich→Drive ≈ 13 s / 100 MB).
    pub const I2_GOOGLE_MBPS: f64 = 60.0;
    /// Per-flow policing of PlanetLab traffic on the inter-testbed GREN
    /// transit (UBC→UMich ≈ 119 s / 100 MB).
    pub const GREN_POLICE_MBPS: f64 = 6.7;
    /// Commodity Google peering east: shared with heavy background
    /// (Purdue→Drive direct ≈ 1.1 Mbps effective).
    pub const COMMODITY_GOOGLE_MBPS: f64 = 8.0;
    /// West commodity ingress at Dropbox Ashburn (UBC→Dropbox fast).
    pub const DROPBOX_WEST_MBPS: f64 = 40.0;
    /// East commodity ingress at Dropbox (Purdue→Dropbox, with background).
    pub const DROPBOX_EAST_MBPS: f64 = 12.0;
    /// CANARIE east path to Ashburn (UAlberta→Dropbox ≈ 60 s / 100 MB).
    pub const CANARIE_DROPBOX_MBPS: f64 = 13.0;
    /// Internet2 path to Ashburn (UMich→Dropbox ≈ 56 s / 100 MB).
    pub const I2_DROPBOX_MBPS: f64 = 14.3;
    /// Pacificwave ingress at OneDrive Seattle (clean west path).
    pub const ONEDRIVE_WEST_MBPS: f64 = 32.0;
    /// East commodity ingress at OneDrive (Purdue→OneDrive, heavy bg).
    pub const ONEDRIVE_EAST_MBPS: f64 = 6.0;
    /// Fat core links (never the bottleneck).
    pub const CORE_MBPS: f64 = 1000.0;
}

use calibration::*;

/// The paper's three measuring clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Client {
    /// University of British Columbia PlanetLab node (west coast).
    Ubc,
    /// Purdue University PlanetLab node (eastern half).
    Purdue,
    /// UCLA PlanetLab node (west coast, last-mile-limited).
    Ucla,
}

impl Client {
    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            Client::Ubc => "UBC",
            Client::Purdue => "Purdue",
            Client::Ucla => "UCLA",
        }
    }

    /// All clients in the paper's section order.
    pub fn all() -> [Client; 3] {
        [Client::Ubc, Client::Purdue, Client::Ucla]
    }
}

/// Knobs for ablations.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOptions {
    /// Scale factor on all background-traffic intensities (A3 sweeps this).
    pub congestion_scale: f64,
    /// Disable the pacificwave per-flow policer (counterfactual ablation:
    /// "what if the hand-off were clean?").
    pub disable_pacificwave_policer: bool,
    /// Per-run uniform capacity jitter fraction (see
    /// [`netsim::engine::Sim::set_capacity_jitter`]). The paper's error
    /// bars never vanish even on uncontended routes; 4% reproduces their
    /// scale on the clean UBC/UCLA paths.
    pub capacity_jitter: f64,
    /// Counterfactual from the paper's "medium term" discussion: give
    /// Google Drive a second, cleanly-peered POP in Seattle. West-coast
    /// clients are then steered there and the pacificwave pathology becomes
    /// irrelevant (ablation A4).
    pub google_seattle_pop: bool,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            congestion_scale: 1.0,
            disable_pacificwave_policer: false,
            capacity_jitter: 0.04,
            google_seattle_pop: false,
        }
    }
}

/// Node handles for the built scenario.
#[derive(Debug, Clone, Copy)]
pub struct Nodes {
    /// UBC PlanetLab client.
    pub ubc: NodeId,
    /// UAlberta cluster DTN.
    pub ualberta: NodeId,
    /// UMich PlanetLab DTN.
    pub umich: NodeId,
    /// Purdue PlanetLab client.
    pub purdue: NodeId,
    /// UCLA PlanetLab client.
    pub ucla: NodeId,
    /// Google Drive frontend (Mountain View).
    pub google_pop: NodeId,
    /// Dropbox frontend (Ashburn).
    pub dropbox_pop: NodeId,
    /// OneDrive frontend (Seattle).
    pub onedrive_pop: NodeId,
    /// `vncv1rtr2.canarie.ca` — the shared middlebox of Figures 5/6.
    pub vncv: NodeId,
    /// The pacificwave exchange.
    pub pacificwave: NodeId,
    /// The counterfactual Seattle Google POP (ablation A4), when enabled.
    pub google_pop_seattle: Option<NodeId>,
}

/// The assembled scenario: build once, then mint one [`Sim`] per run.
pub struct NorthAmerica {
    topo: Topology,
    nodes: Nodes,
    overrides: Vec<RouteOverride>,
    policers: Vec<Policer>,
    backgrounds: Vec<BackgroundProfile>,
    options: ScenarioOptions,
}

impl NorthAmerica {
    /// Build with default options.
    pub fn new() -> Self {
        Self::with_options(ScenarioOptions::default())
    }

    /// Build with ablation knobs.
    pub fn with_options(options: ScenarioOptions) -> Self {
        let mut b = TopologyBuilder::new();

        // --- hosts -------------------------------------------------------
        let ubc = b.host("planetlab.ubc.ca", places::UBC);
        let ualberta = b.host("cluster.cs.ualberta.ca", places::UALBERTA);
        let umich = b.host("planetlab.umich.edu", places::UMICH);
        let purdue = b.host("planetlab.purdue.edu", places::PURDUE);
        let ucla = b.host("planetlab.ucla.edu", places::UCLA);

        // --- campus infrastructure (names follow the paper's traceroutes)
        let ubc_net = b.router("a0-a1.net.ubc.ca", places::UBC);
        let ubc_border = b.router("angusborder-a0.net.ubc.ca", places::UBC);
        let bcnet = b.router("345-IX-cr1-UBCab.vncv1.BC.net", places::VANCOUVER_IX);
        let ua_fw = b.router("ww-fw.cs.ualberta.ca", places::UALBERTA);
        let ua_priv = b.router("ualberta-private-hop", places::UALBERTA);
        b.set_anonymous(ua_priv);
        let ua_core = b.router("core1-sc.backbone.ualberta.ca", places::UALBERTA);
        let cybera = b.router("uofa-p-1-edm.cybera.ca", places::UALBERTA);
        let umich_campus = b.router("border.umich.edu", places::UMICH);
        let purdue_campus = b.router("border.purdue.edu", places::PURDUE);
        let ucla_campus = b.router("border.ucla.edu", places::UCLA);

        // --- core networks ----------------------------------------------
        let vncv = b.router("vncv1rtr2.canarie.ca", places::VANCOUVER_IX);
        b.set_ip(vncv, [199, 212, 24, 1]);
        let edmn = b.router("edmn1rtr2.canarie.ca", places::UALBERTA);
        b.set_ip(edmn, [199, 212, 24, 68]);
        let pacificwave = b.exchange(
            "google-1-lo-std-707.sttlwa.pacificwave.net",
            places::SEATTLE,
        );
        b.set_ip(pacificwave, [207, 231, 242, 20]);
        let gren = b.exchange("gren-transit.example.net", places::CHICAGO_IX);
        let i2_chicago = b.router("internet2.chicago", places::CHICAGO_IX);
        let comm_west = b.router("commodity-west.sjc", GeoPoint::new(37.34, -121.89));
        let comm_east = b.router("commodity-east.chi", places::CHICAGO_IX);
        let goog_edge = b.router("google-edge-peering", places::MOUNTAIN_VIEW);
        b.set_anonymous(goog_edge);

        // --- provider POPs ----------------------------------------------
        let google_pop = b.datacenter("sea15s01-in-f138.1e100.net", places::MOUNTAIN_VIEW);
        b.set_ip(google_pop, [216, 58, 216, 138]);
        let dropbox_pop = b.datacenter("dropbox-edge.ashburn", places::ASHBURN);
        let onedrive_pop = b.datacenter("onedrive-edge.seattle", places::SEATTLE);

        // --- background endpoints ----------------------------------------
        let bg_g_src = b.host("bg-google-src", places::CHICAGO_IX);
        let bg_o_src = b.host("bg-onedrive-src", places::CHICAGO_IX);
        let bg_d_src = b.host("bg-dropbox-src", places::CHICAGO_IX);

        // --- links --------------------------------------------------------
        let core = LinkParams::geo(Bandwidth::from_mbps(CORE_MBPS));
        let access = |mbps: f64| LinkParams::geo(Bandwidth::from_mbps(mbps));

        // Campus access chains.
        b.duplex(ubc, ubc_net, access(UBC_ACCESS_MBPS));
        b.duplex(ubc_net, ubc_border, core);
        b.duplex(ubc_border, bcnet, core);
        b.duplex(ualberta, ua_fw, core);
        b.duplex(ua_fw, ua_priv, core);
        b.duplex(ua_priv, ua_core, core);
        b.duplex(ua_core, cybera, core);
        b.duplex(umich, umich_campus, access(UMICH_ACCESS_MBPS));
        b.duplex(purdue, purdue_campus, access(PURDUE_ACCESS_MBPS));
        b.duplex(ucla, ucla_campus, access(UCLA_ACCESS_MBPS));

        // Research core.
        b.duplex(bcnet, vncv, core);
        b.duplex(cybera, edmn, core);
        b.duplex(edmn, vncv, core); // CANARIE backbone Edmonton–Vancouver
        b.duplex(umich_campus, i2_chicago, core);
        b.duplex(
            purdue_campus,
            i2_chicago,
            LinkParams::geo(Bandwidth::from_mbps(622.0)),
        );
        // CANARIE–Internet2 peering: high capacity but cost-discouraged so
        // research traffic to Google keeps using CANARIE's own peering.
        b.duplex(
            edmn,
            i2_chicago,
            LinkParams::geo(Bandwidth::from_mbps(CORE_MBPS)).with_cost(40),
        );

        // GREN transit between the testbeds (the slow UBC↔UMich path).
        b.duplex(vncv, gren, core);
        b.duplex(gren, i2_chicago, core);

        // Commodity core.
        b.duplex(ucla_campus, comm_west, core);
        b.duplex(bcnet, comm_west, core);
        b.duplex(
            purdue_campus,
            comm_east,
            LinkParams::geo(Bandwidth::from_mbps(500.0)),
        );
        b.duplex(comm_west, comm_east, core);
        b.duplex(comm_west, pacificwave, core);

        // Exchange hand-offs toward Google.
        let (vncv_pw, _) = b.duplex(
            vncv,
            pacificwave,
            LinkParams::geo(Bandwidth::from_mbps(200.0)),
        );
        let (pw_goog, _) = b.duplex(pacificwave, google_pop, core);
        // CANARIE→Google direct peering crosses the anonymous edge hop that
        // renders as `* * *` in the paper's Figure 6.
        b.duplex(vncv, goog_edge, access(CANARIE_GOOGLE_MBPS).with_cost(8));
        b.duplex(goog_edge, google_pop, core);
        b.duplex(i2_chicago, google_pop, access(I2_GOOGLE_MBPS));
        let (ce_goog, _) = b.duplex(comm_east, google_pop, access(COMMODITY_GOOGLE_MBPS));
        b.duplex(comm_west, google_pop, core);

        // Dropbox ingress.
        b.duplex(comm_west, dropbox_pop, access(DROPBOX_WEST_MBPS));
        let (ce_db, _) = b.duplex(comm_east, dropbox_pop, access(DROPBOX_EAST_MBPS));
        b.duplex(edmn, dropbox_pop, access(CANARIE_DROPBOX_MBPS));
        b.duplex(
            i2_chicago,
            dropbox_pop,
            access(I2_DROPBOX_MBPS).with_cost(30),
        );

        // OneDrive ingress.
        b.duplex(i2_chicago, pacificwave, core);
        b.duplex(pacificwave, onedrive_pop, access(ONEDRIVE_WEST_MBPS));
        let (ce_od, _) = b.duplex(comm_east, onedrive_pop, access(ONEDRIVE_EAST_MBPS));

        // Ablation A4: a second, cleanly-peered Google POP in Seattle.
        let google_pop_seattle = if options.google_seattle_pop {
            let pop = b.datacenter("sea-pop.1e100.net", places::SEATTLE);
            b.duplex(pacificwave, pop, core);
            Some(pop)
        } else {
            None
        };

        // Background attachment points (fat dedicated access links).
        b.duplex(bg_g_src, comm_east, core);
        b.duplex(bg_o_src, comm_east, core);
        b.duplex(bg_d_src, comm_east, core);
        let bg_g_dst = b.host("bg-google-dst", places::MOUNTAIN_VIEW);
        let bg_o_dst = b.host("bg-onedrive-dst", places::SEATTLE);
        let bg_d_dst = b.host("bg-dropbox-dst", places::ASHBURN);
        b.duplex(google_pop, bg_g_dst, core);
        b.duplex(onedrive_pop, bg_o_dst, core);
        b.duplex(dropbox_pop, bg_d_dst, core);

        let topo = b.build();

        // --- route pins (the BGP opacity the paper diagnosed) -------------
        let overrides = vec![
            // UBC's PlanetLab traffic to Google goes through pacificwave
            // (the paper's Figure 5 path), not the clean CANARIE peering.
            RouteOverride::new(
                ubc,
                google_pop,
                vec![
                    ubc,
                    ubc_net,
                    ubc_border,
                    bcnet,
                    vncv,
                    pacificwave,
                    google_pop,
                ],
            ),
            // Inter-testbed UBC→UMich rides the policed GREN transit.
            RouteOverride::new(
                ubc,
                umich,
                vec![
                    ubc,
                    ubc_net,
                    ubc_border,
                    bcnet,
                    vncv,
                    gren,
                    i2_chicago,
                    umich_campus,
                    umich,
                ],
            ),
            // Purdue's Google traffic leaves through the congested commodity
            // peering, not Internet2 (the paper's §III-B pathology).
            RouteOverride::new(
                purdue,
                google_pop,
                vec![purdue, purdue_campus, comm_east, google_pop],
            ),
        ];

        // --- policers ------------------------------------------------------
        let mut policers = Vec::new();
        if !options.disable_pacificwave_policer {
            // The policer sits on the pacificwave→Google hand-off only:
            // UBC's OneDrive traffic crosses pacificwave unharmed, exactly
            // as the paper observed (Drive slow, OneDrive fine).
            policers.push(
                Policer::per_flow(
                    "pacificwave-planetlab",
                    pw_goog,
                    FlowClass::PlanetLab,
                    Bandwidth::from_mbps(PACIFICWAVE_POLICE_MBPS),
                )
                .also_matching(FlowClass::Probe),
            );
        }
        let _ = vncv_pw;
        policers.push(Policer::per_flow(
            "gren-transit-planetlab",
            topo.link_between(vncv, gren).expect("gren link"),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(GREN_POLICE_MBPS),
        ));

        // --- background traffic -------------------------------------------
        let s = options.congestion_scale;
        let mut backgrounds = Vec::new();
        if s > 0.0 {
            // Purdue→Google's 8 Mbps peering is hammered (σ must be large
            // and the mean ~1.1 Mbps per foreground flow).
            backgrounds.push(BackgroundProfile::heavy(bg_g_src, bg_g_dst).scaled(s * 0.6));
            // OneDrive's 6 Mbps east ingress: heavy, bursty (σ 118 s on a
            // 388 s mean in the paper's Table IV).
            backgrounds.push(BackgroundProfile::moderate(bg_o_src, bg_o_dst).scaled(s * 1.0));
            // Dropbox's 12 Mbps east ingress: moderate (σ 36 s on 178 s).
            backgrounds.push(BackgroundProfile::moderate(bg_d_src, bg_d_dst).scaled(s * 0.7));
        }
        let _ = (ce_goog, ce_db, ce_od); // link ids kept for documentation

        let nodes = Nodes {
            ubc,
            ualberta,
            umich,
            purdue,
            ucla,
            google_pop,
            dropbox_pop,
            onedrive_pop,
            vncv,
            pacificwave,
            google_pop_seattle,
        };
        NorthAmerica {
            topo,
            nodes,
            overrides,
            policers,
            backgrounds,
            options,
        }
    }

    /// Node handles.
    pub fn nodes(&self) -> &Nodes {
        &self.nodes
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Options used to build this scenario.
    pub fn options(&self) -> ScenarioOptions {
        self.options
    }

    /// Mint one simulator: topology + pins + policers + fresh background
    /// processes, all seeded by `seed`.
    pub fn build_sim(&self, seed: u64) -> Sim {
        let mut sim = Sim::new(self.topo.clone(), seed);
        if self.options.capacity_jitter > 0.0 {
            sim.set_capacity_jitter(self.options.capacity_jitter);
        }
        for ov in &self.overrides {
            sim.add_route_override(ov.clone());
        }
        for p in &self.policers {
            sim.add_policer(p.clone());
        }
        for bg in &self.backgrounds {
            sim.spawn_detached(Box::new(BackgroundTraffic::new(bg.clone())));
        }
        sim
    }

    /// A provider instance bound to its POP(s) in this topology.
    pub fn provider(&self, kind: ProviderKind) -> Provider {
        let pop = match kind {
            ProviderKind::GoogleDrive => self.nodes.google_pop,
            ProviderKind::Dropbox => self.nodes.dropbox_pop,
            ProviderKind::OneDrive => self.nodes.onedrive_pop,
        };
        let mut provider = Provider::new(kind, pop);
        if kind == ProviderKind::GoogleDrive {
            if let Some(sea) = self.nodes.google_pop_seattle {
                provider = provider.with_pop(sea);
            }
        }
        provider
    }

    /// Client spec for a measuring site.
    pub fn client(&self, c: Client) -> ClientSpec {
        let (node, class) = match c {
            Client::Ubc => (self.nodes.ubc, FlowClass::PlanetLab),
            Client::Purdue => (self.nodes.purdue, FlowClass::PlanetLab),
            Client::Ucla => (self.nodes.ucla, FlowClass::PlanetLab),
        };
        ClientSpec::new(node, class, c.name())
    }

    /// The UAlberta detour hop (research-class cluster).
    pub fn hop_ualberta(&self) -> Hop {
        Hop::new(self.nodes.ualberta, FlowClass::Research, "UAlberta")
    }

    /// The UMich detour hop (PlanetLab-class node).
    pub fn hop_umich(&self) -> Hop {
        Hop::new(self.nodes.umich, FlowClass::PlanetLab, "UMich")
    }

    /// The paper's file-size sweep: 10–100 MB.
    pub fn paper_sizes() -> Vec<u64> {
        vec![
            10 * MB,
            20 * MB,
            30 * MB,
            40 * MB,
            50 * MB,
            60 * MB,
            100 * MB,
        ]
    }
}

impl Default for NorthAmerica {
    fn default() -> Self {
        Self::new()
    }
}

impl SimFactory for NorthAmerica {
    fn build(&self, seed: u64) -> Sim {
        self.build_sim(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::TransferRequest;
    use netsim::flow::FlowSpec;

    fn rate_mbps(sim: &mut Sim, src: NodeId, dst: NodeId, class: FlowClass) -> f64 {
        sim.core().idle_path_rate(src, dst, class).unwrap().mbps()
    }

    #[test]
    fn calibration_idle_rates() {
        // Jitter off: this test pins the *nominal* calibration constants.
        let world = NorthAmerica::with_options(ScenarioOptions {
            capacity_jitter: 0.0,
            ..ScenarioOptions::default()
        });
        let n = *world.nodes();
        let mut sim = world.build_sim(0);
        // UBC→Google is policed to ~9.3 Mbps for PlanetLab traffic.
        let r = rate_mbps(&mut sim, n.ubc, n.google_pop, FlowClass::PlanetLab);
        assert!(
            (r - PACIFICWAVE_POLICE_MBPS).abs() < 0.01,
            "ubc->google {r}"
        );
        // UAlberta→Google rides the 47 Mbps peering.
        let r = rate_mbps(&mut sim, n.ualberta, n.google_pop, FlowClass::Research);
        assert!(
            (r - CANARIE_GOOGLE_MBPS).abs() < 0.01,
            "ualberta->google {r}"
        );
        // UBC→UAlberta is limited by the slice egress.
        let r = rate_mbps(&mut sim, n.ubc, n.ualberta, FlowClass::PlanetLab);
        assert!((r - UBC_ACCESS_MBPS).abs() < 0.01, "ubc->ualberta {r}");
        // UBC→UMich crosses the policed GREN transit.
        let r = rate_mbps(&mut sim, n.ubc, n.umich, FlowClass::PlanetLab);
        assert!((r - GREN_POLICE_MBPS).abs() < 0.01, "ubc->umich {r}");
        // UMich→Google uses the 60 Mbps Internet2 peering.
        let r = rate_mbps(&mut sim, n.umich, n.google_pop, FlowClass::PlanetLab);
        assert!((r - I2_GOOGLE_MBPS).abs() < 0.01, "umich->google {r}");
        // Purdue is shaped to 4.6 Mbps toward the DTNs.
        let r = rate_mbps(&mut sim, n.purdue, n.ualberta, FlowClass::PlanetLab);
        assert!(
            (r - PURDUE_ACCESS_MBPS).abs() < 0.01,
            "purdue->ualberta {r}"
        );
        // UCLA's last mile dominates everywhere.
        let r = rate_mbps(&mut sim, n.ucla, n.google_pop, FlowClass::PlanetLab);
        assert!((r - UCLA_ACCESS_MBPS).abs() < 0.01, "ucla->google {r}");
        // UBC's commodity destinations are NOT policed.
        let r = rate_mbps(&mut sim, n.ubc, n.dropbox_pop, FlowClass::PlanetLab);
        assert!((r - DROPBOX_WEST_MBPS).abs() < 0.01, "ubc->dropbox {r}");
        let r = rate_mbps(&mut sim, n.ubc, n.onedrive_pop, FlowClass::PlanetLab);
        assert!((r - ONEDRIVE_WEST_MBPS).abs() < 0.01, "ubc->onedrive {r}");
    }

    #[test]
    fn ubc_google_headline_numbers() {
        // The paper's intro: 100 MB UBC→Drive direct ≈ 87 s; UBC→UAlberta
        // ≈ 19 s; UAlberta→Drive ≈ 17 s. Raw flows (no API overhead) land
        // within ~15% of each.
        let world = NorthAmerica::new();
        let n = *world.nodes();
        let t = |src, dst, class| {
            let mut sim = world.build_sim(42);
            sim.run_transfer(TransferRequest {
                spec: FlowSpec::new(src, dst, 100 * MB, class),
            })
            .unwrap()
            .elapsed
            .as_secs_f64()
        };
        let direct = t(n.ubc, n.google_pop, FlowClass::PlanetLab);
        assert!((80.0..100.0).contains(&direct), "ubc->google {direct}");
        let leg1 = t(n.ubc, n.ualberta, FlowClass::PlanetLab);
        assert!((17.0..23.0).contains(&leg1), "ubc->ualberta {leg1}");
        let leg2 = t(n.ualberta, n.google_pop, FlowClass::Research);
        assert!((15.0..20.0).contains(&leg2), "ualberta->google {leg2}");
        assert!(leg1 + leg2 < direct / 2.0, "detour must beat direct by 2x+");
    }

    #[test]
    fn purdue_google_is_pathological() {
        let world = NorthAmerica::new();
        let n = *world.nodes();
        let mut times = Vec::new();
        for seed in 0..3 {
            let mut sim = world.build_sim(seed);
            let t = sim
                .run_transfer(TransferRequest {
                    spec: FlowSpec::new(n.purdue, n.google_pop, 100 * MB, FlowClass::PlanetLab),
                })
                .unwrap()
                .elapsed
                .as_secs_f64();
            times.push(t);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        // Paper: 748 s. Anything in the many-hundreds with spread is the
        // right pathology.
        assert!(mean > 350.0, "purdue->google mean {mean} ({times:?})");
    }

    #[test]
    fn overrides_show_in_traceroute() {
        let world = NorthAmerica::new();
        let n = *world.nodes();
        let mut sim = world.build_sim(1);
        let tr_ubc = Traceroute::run(sim.core(), n.ubc, n.google_pop).unwrap();
        assert!(tr_ubc.crosses("vncv1rtr2.canarie.ca"));
        assert!(tr_ubc.crosses("google-1-lo-std-707.sttlwa.pacificwave.net"));
        let tr_ua = Traceroute::run(sim.core(), n.ualberta, n.google_pop).unwrap();
        assert!(tr_ua.crosses("vncv1rtr2.canarie.ca"));
        assert!(!tr_ua.crosses("google-1-lo-std-707.sttlwa.pacificwave.net"));
        // The UAlberta trace contains anonymous hops, like the paper's.
        assert!(tr_ua.to_string().contains("* * *"));
    }

    #[test]
    fn ablation_knobs_work() {
        let world = NorthAmerica::with_options(ScenarioOptions {
            congestion_scale: 0.0,
            disable_pacificwave_policer: true,
            ..ScenarioOptions::default()
        });
        let n = *world.nodes();
        let mut sim = world.build_sim(0);
        // Without the policer, UBC→Google rides its 43 Mbps access.
        let r = sim
            .core()
            .idle_path_rate(n.ubc, n.google_pop, FlowClass::PlanetLab)
            .unwrap();
        assert!(
            (r.mbps() - UBC_ACCESS_MBPS).abs() < 0.01,
            "unpoliced rate {r}"
        );
    }

    #[test]
    fn seattle_pop_counterfactual_heals_ubc() {
        // The paper's medium-term fix: a cleanly-peered POP near the
        // afflicted clients removes the pathology without any detour.
        let world = NorthAmerica::with_options(ScenarioOptions {
            google_seattle_pop: true,
            capacity_jitter: 0.0,
            ..ScenarioOptions::default()
        });
        let n = *world.nodes();
        let sea = n.google_pop_seattle.expect("second POP exists");
        let provider = world.provider(ProviderKind::GoogleDrive);
        assert_eq!(provider.pops.len(), 2);
        // UBC is steered to Seattle, and its attainable rate is its access
        // link, not the 9.3 Mbps policer.
        assert_eq!(provider.frontend_for(world.topology(), n.ubc), sea);
        let mut sim = world.build_sim(0);
        let r = sim
            .core()
            .idle_path_rate(n.ubc, sea, FlowClass::PlanetLab)
            .unwrap();
        assert!((r.mbps() - UBC_ACCESS_MBPS).abs() < 0.01, "rate {r}");
        // UCLA still gets steered to Mountain View (494 km vs 1540 km).
        assert_eq!(
            provider.frontend_for(world.topology(), n.ucla),
            n.google_pop
        );
    }

    #[test]
    fn routing_backends_agree_on_the_paper_map() {
        // The scenario now routes through the precomputed oracle by
        // default; the per-query reference Dijkstra must resolve every
        // client/provider pair (overrides included) to the identical path.
        let world = NorthAmerica::new();
        let n = *world.nodes();
        let mut oracle = world.build_sim(1);
        let mut reference = world.build_sim(1);
        reference.set_routing_mode(netsim::routing::RoutingMode::Reference);
        let endpoints = [
            n.ubc,
            n.ualberta,
            n.umich,
            n.purdue,
            n.ucla,
            n.google_pop,
            n.dropbox_pop,
            n.onedrive_pop,
        ];
        for &src in &endpoints {
            for &dst in &endpoints {
                assert_eq!(
                    oracle.core().resolve_path(src, dst).unwrap(),
                    reference.core().resolve_path(src, dst).unwrap(),
                    "{src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn oracle_enumerates_detours_on_the_paper_map() {
        let world = NorthAmerica::new();
        let n = *world.nodes();
        let mut sim = world.build_sim(1);
        let detours = sim.core().k_detours(n.ubc, n.google_pop, 4).unwrap();
        assert!(!detours.is_empty());
        for d in &detours {
            // Every candidate is a valid, loop-free walk on the map.
            world.topology().links_on_path(&d.path).unwrap();
            let mut seen = std::collections::HashSet::new();
            assert!(d.path.iter().all(|x| seen.insert(*x)), "{:?}", d.path);
        }
        // The scenario's configured reroute (the paper's hand-picked
        // Pacific Wave detour, installed as an override) is rediscovered
        // automatically by the pure-topology enumeration.
        let routed = sim.core().resolve_path(n.ubc, n.google_pop).unwrap();
        assert!(detours.iter().any(|d| d.path == routed));
        // Costs are nondecreasing (deterministic enumeration order).
        assert!(detours.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn nearest_pop_is_the_papers() {
        let world = NorthAmerica::new();
        let n = *world.nodes();
        for kind in ProviderKind::all() {
            let p = world.provider(kind);
            // Single-POP providers: always the paper's datacenter.
            assert_eq!(p.pops.len(), 1);
        }
        let drive = world.provider(ProviderKind::GoogleDrive);
        assert_eq!(drive.frontend_for(world.topology(), n.ubc), n.google_pop);
    }
}
