//! Realistic personal-cloud sync workloads.
//!
//! The paper's motivation is everyday cloud-storage use, but its benchmark
//! is single files of 10–100 MB. Real sync sessions (Drago et al., IMC'12,
//! the paper's [4]/[8]) are dominated *in count* by small files and *in
//! bytes* by a few large ones. This module generates such sessions and
//! plays them through a client, comparing routing policies end to end —
//! where per-file protocol overheads (which detours double) matter for the
//! small files, and path bandwidth matters for the large ones.

use crate::northamerica::{Client, NorthAmerica};
use cloudstore::{ProviderKind, TokenPolicy, UploadOptions};
use detour_core::{run_job, AdaptiveSelector, Route};
use netsim::units::{KB, MB};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sequence of file uploads forming one sync session.
#[derive(Debug, Clone)]
pub struct SyncWorkload {
    /// File sizes, in upload order.
    pub files: Vec<u64>,
}

impl SyncWorkload {
    /// A personal-cloud session: ~70% small files (50 KB–1 MB: documents,
    /// photos' thumbnails), ~25% medium (1–20 MB: photos, slides), ~5%
    /// large (40–120 MB: videos, archives). Deterministic per seed.
    pub fn personal_cloud(seed: u64, n_files: usize) -> Self {
        assert!(n_files > 0);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x70ad);
        let files = (0..n_files)
            .map(|_| {
                let x: f64 = rng.gen();
                if x < 0.70 {
                    rng.gen_range(50 * KB..MB)
                } else if x < 0.95 {
                    rng.gen_range(MB..20 * MB)
                } else {
                    rng.gen_range(40 * MB..120 * MB)
                }
            })
            .collect();
        SyncWorkload { files }
    }

    /// Total payload.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().sum()
    }
}

/// How the session chooses routes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionPolicy {
    /// Everything direct (the default client behaviour).
    AlwaysDirect,
    /// Everything through the given fixed route index (1 = via UAlberta,
    /// 2 = via UMich, in the standard route list).
    FixedRoute(usize),
    /// ε-greedy adaptive selection, learning across the session's files.
    Adaptive {
        /// Exploration probability.
        epsilon: f64,
    },
}

/// Result of one played session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Total simulated wall-clock for the session.
    pub total_secs: f64,
    /// Route index used per file.
    pub choices: Vec<usize>,
}

/// Play a sync session through one simulation (time accumulates across
/// files; the first upload pays the OAuth grant, the rest reuse the token).
pub fn run_session(
    world: &NorthAmerica,
    client: Client,
    provider_kind: ProviderKind,
    workload: &SyncWorkload,
    policy: SessionPolicy,
    seed: u64,
) -> SessionReport {
    let spec = world.client(client);
    let provider = world.provider(provider_kind);
    let routes: Vec<Route> = vec![
        Route::Direct,
        Route::via(world.hop_ualberta()),
        Route::via(world.hop_umich()),
    ];
    let mut sim = world.build_sim(seed);
    let mut selector = AdaptiveSelector::new(routes.len(), 0.0, 0.4);
    let mut sel_rng = SmallRng::seed_from_u64(seed ^ 0x5e1);
    let mut choices = Vec::with_capacity(workload.files.len());
    let mut total = 0.0;

    for (i, &bytes) in workload.files.iter().enumerate() {
        let route_idx = match policy {
            SessionPolicy::AlwaysDirect => 0,
            SessionPolicy::FixedRoute(r) => r,
            SessionPolicy::Adaptive { epsilon } => {
                // Respect the caller's ε while reusing the EWMA machinery.
                let mut s = selector.clone();
                s.epsilon = epsilon;
                s.next_route(&mut sel_rng)
            }
        };
        let token = if i == 0 {
            TokenPolicy::Fresh
        } else {
            TokenPolicy::Cached
        };
        let opts = UploadOptions {
            token,
            class: spec.class,
            ..UploadOptions::default()
        };
        let report = run_job(
            &mut sim,
            spec.node,
            spec.class,
            &provider,
            bytes,
            &routes[route_idx],
            opts,
        )
        .expect("session upload");
        // Bytes-normalized cost so small files don't dominate the estimate.
        selector.record(
            route_idx,
            report.secs() / (bytes as f64 / MB as f64).max(0.05),
        );
        total += report.secs();
        choices.push(route_idx);
    }
    SessionReport {
        total_secs: total,
        choices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_distribution_shape() {
        let w = SyncWorkload::personal_cloud(1, 400);
        assert_eq!(w.files.len(), 400);
        let small = w.files.iter().filter(|&&b| b < MB).count() as f64 / 400.0;
        let large = w.files.iter().filter(|&&b| b >= 40 * MB).count();
        assert!((0.6..0.8).contains(&small), "small fraction {small}");
        assert!(large >= 1, "no large files in 400 draws");
        // Bytes are dominated by the large tail.
        let large_bytes: u64 = w.files.iter().filter(|&&b| b >= 40 * MB).sum();
        assert!(
            large_bytes * 2 > w.total_bytes(),
            "tail should dominate bytes"
        );
        // Deterministic.
        assert_eq!(w.files, SyncWorkload::personal_cloud(1, 400).files);
    }

    #[test]
    fn session_policies_differ_where_the_paper_says() {
        // From Purdue to Google Drive, a fixed via-UMich session should beat
        // an always-direct session (the large files dominate, and direct is
        // catastrophic for them).
        let world = NorthAmerica::new();
        let w = SyncWorkload::personal_cloud(2, 12);
        let direct = run_session(
            &world,
            Client::Purdue,
            ProviderKind::GoogleDrive,
            &w,
            SessionPolicy::AlwaysDirect,
            3,
        );
        let detour = run_session(
            &world,
            Client::Purdue,
            ProviderKind::GoogleDrive,
            &w,
            SessionPolicy::FixedRoute(2),
            3,
        );
        assert!(
            detour.total_secs < direct.total_secs,
            "detour session {} !< direct {}",
            detour.total_secs,
            direct.total_secs
        );
        assert!(direct.choices.iter().all(|&c| c == 0));
        assert!(detour.choices.iter().all(|&c| c == 2));
    }

    #[test]
    fn adaptive_session_converges_to_a_good_route() {
        let world = NorthAmerica::new();
        let w = SyncWorkload::personal_cloud(4, 16);
        let adaptive = run_session(
            &world,
            Client::Purdue,
            ProviderKind::GoogleDrive,
            &w,
            SessionPolicy::Adaptive { epsilon: 0.1 },
            5,
        );
        // After exploring all three routes, later files should mostly use a
        // detour (route 1 or 2).
        let tail = &adaptive.choices[3..];
        let detour_share = tail.iter().filter(|&&c| c != 0).count() as f64 / tail.len() as f64;
        assert!(
            detour_share > 0.5,
            "adaptive stuck on direct: {:?}",
            adaptive.choices
        );
    }
}
