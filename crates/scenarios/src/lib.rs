//! # scenarios — the paper's measurement world, calibrated
//!
//! This crate holds the North-America topology the paper measured over
//! (October–November 2015) with link capacities, policers, route pins and
//! background-traffic processes calibrated from the paper's own numbers —
//! see `DESIGN.md` §3 for the calibration table and
//! [`northamerica::calibration`] for the constants.
//!
//! * [`northamerica`] — clients (UBC, Purdue, UCLA PlanetLab; the UAlberta
//!   cluster; UMich PlanetLab), CANARIE/BCNET/Cybera/Internet2/commodity
//!   core, the pacificwave hand-off, and the three provider POPs
//!   (Mountain View / Ashburn / Seattle).
//! * [`experiments`] — one constructor per paper artifact (Fig 2 → Table V),
//!   returning ready-to-run campaigns.
//! * [`summary`] — Table I / Table V renderers built on campaign results.
//! * [`sync`] — the delta-sync study: three arms (direct, store-and-forward,
//!   delta-sync detour through a shared DTN chunk store) per tenant and
//!   round, reporting byte savings, cache hit rate and win/loss flips.

pub mod experiments;
pub mod northamerica;
pub mod summary;
pub mod sync;
pub mod workload;

pub use experiments::{Experiment, ExperimentSet};
pub use northamerica::{Client, NorthAmerica, ScenarioOptions};
pub use sync::{run_sync_study, SyncRow, SyncStudyConfig, SyncStudyReport};
pub use workload::{run_session, SessionPolicy, SessionReport, SyncWorkload};
