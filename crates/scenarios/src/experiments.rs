//! One constructor per paper artifact.
//!
//! Every figure and table in the paper's evaluation maps to a method here
//! (the per-experiment index lives in `DESIGN.md` §4). The methods return
//! either a ready [`CampaignResult`] or rendered text (traceroutes, maps).

use crate::northamerica::{Client, NorthAmerica};
use crate::summary;
use cloudstore::ProviderKind;
use detour_core::{Campaign, CampaignResult, Route};
use measure::{RunProtocol, Table};
use netsim::error::NetError;
use netsim::trace::Traceroute;
use std::borrow::Cow;

/// Identifiers for the paper's artifacts (used by the `repro` harness CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Fig 2: UBC→Google Drive, direct vs detours.
    Fig2,
    /// Fig 3: geography of clients, DTNs and POPs.
    Fig3,
    /// Fig 4: UBC→Dropbox.
    Fig4,
    /// Fig 5: traceroute UBC→Google.
    Fig5,
    /// Fig 6: traceroute UAlberta→Google.
    Fig6,
    /// Fig 7 (and Table III): Purdue→Google Drive.
    Fig7,
    /// Fig 8: Purdue→Dropbox.
    Fig8,
    /// Fig 9: Purdue→OneDrive.
    Fig9,
    /// Fig 10: UCLA→Google Drive.
    Fig10,
    /// Fig 11: UCLA→Dropbox.
    Fig11,
    /// Table I: the 3×3 fastest/slowest summary.
    Table1,
    /// Table II: UBC→Google numbers (same data as Fig 2).
    Table2,
    /// Table III: Purdue→Google numbers (same data as Fig 7).
    Table3,
    /// Table IV: Purdue mean±σ and the overlap analysis.
    Table4,
    /// Table V: geographic summary of fastest routes.
    Table5,
}

/// Runs the paper's experiments over a built scenario.
pub struct ExperimentSet<'a> {
    /// The calibrated world.
    pub world: &'a NorthAmerica,
    /// Measurement protocol (paper: 7 runs keep 5).
    pub protocol: RunProtocol,
    /// File sizes (paper: 10–100 MB). Override for quick smoke runs.
    pub sizes: Vec<u64>,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl<'a> ExperimentSet<'a> {
    /// Full paper configuration.
    pub fn paper(world: &'a NorthAmerica) -> Self {
        ExperimentSet {
            world,
            protocol: RunProtocol::paper(),
            sizes: NorthAmerica::paper_sizes(),
            threads: 0,
        }
    }

    /// Reduced configuration for tests.
    pub fn quick(world: &'a NorthAmerica) -> Self {
        ExperimentSet {
            world,
            protocol: RunProtocol::quick(),
            sizes: vec![10 * netsim::units::MB, 60 * netsim::units::MB],
            threads: 0,
        }
    }

    /// The standard route set: Direct, via UAlberta, via UMich.
    pub fn routes(&self) -> Vec<Route> {
        vec![
            Route::Direct,
            Route::via(self.world.hop_ualberta()),
            Route::via(self.world.hop_umich()),
        ]
    }

    /// The unrun campaign for one (client × provider) cell — callers can
    /// [`Campaign::run`] it or replay a single run with telemetry via
    /// [`Campaign::trace_run`] (same per-run seeds either way).
    pub fn campaign_spec(&self, client: Client, provider: ProviderKind) -> Campaign<'a> {
        Campaign {
            factory: self.world,
            client: Cow::Owned(self.world.client(client)),
            provider: Cow::Owned(self.world.provider(provider)),
            routes: Cow::Owned(self.routes()),
            sizes: self.sizes.clone(),
            protocol: self.protocol,
            label: format!("{}-{}", client.name(), provider.display_name()),
            threads: self.threads,
        }
    }

    /// One (client × provider) campaign with the standard routes.
    pub fn campaign(
        &self,
        client: Client,
        provider: ProviderKind,
    ) -> Result<CampaignResult, NetError> {
        self.campaign_spec(client, provider).run()
    }

    /// Fig 2 / Table II data.
    pub fn fig2(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Ubc, ProviderKind::GoogleDrive)
    }

    /// Fig 4 data.
    pub fn fig4(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Ubc, ProviderKind::Dropbox)
    }

    /// Fig 7 / Table III data.
    pub fn fig7(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Purdue, ProviderKind::GoogleDrive)
    }

    /// Fig 8 data.
    pub fn fig8(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Purdue, ProviderKind::Dropbox)
    }

    /// Fig 9 data.
    pub fn fig9(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Purdue, ProviderKind::OneDrive)
    }

    /// Fig 10 data.
    pub fn fig10(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Ucla, ProviderKind::GoogleDrive)
    }

    /// Fig 11 data.
    pub fn fig11(&self) -> Result<CampaignResult, NetError> {
        self.campaign(Client::Ucla, ProviderKind::Dropbox)
    }

    /// Fig 5: traceroute from UBC to the Google frontend.
    pub fn fig5(&self) -> Traceroute {
        let n = *self.world.nodes();
        let mut sim = self.world.build_sim(5);
        Traceroute::run(sim.core(), n.ubc, n.google_pop).expect("route exists")
    }

    /// Fig 6: traceroute from UAlberta to the Google frontend.
    pub fn fig6(&self) -> Traceroute {
        let n = *self.world.nodes();
        let mut sim = self.world.build_sim(6);
        Traceroute::run(sim.core(), n.ualberta, n.google_pop).expect("route exists")
    }

    /// Fig 3: the geography listing (clients, DTNs, POPs with coordinates
    /// and great-circle distances).
    pub fn fig3(&self) -> Table {
        summary::geography_table(self.world)
    }

    /// Table IV: Purdue mean±σ for Dropbox and OneDrive at 60 and 100 MB,
    /// with the paper's overlap verdicts.
    pub fn table4(&self) -> Result<Table, NetError> {
        let sizes: Vec<u64> = self
            .sizes
            .iter()
            .copied()
            .filter(|&s| s == 60 * netsim::units::MB || s == 100 * netsim::units::MB)
            .collect();
        let sizes = if sizes.is_empty() {
            vec![*self.sizes.last().expect("sizes")]
        } else {
            sizes
        };
        let mut set = ExperimentSet {
            world: self.world,
            protocol: self.protocol,
            sizes,
            threads: self.threads,
        };
        let dropbox = set.campaign(Client::Purdue, ProviderKind::Dropbox)?;
        let onedrive = set.campaign(Client::Purdue, ProviderKind::OneDrive)?;
        set.sizes.clear(); // set consumed; silence unused-mut paths
        Ok(summary::table4(&dropbox, &onedrive))
    }

    /// All nine (client × provider) campaigns, for Tables I and V.
    pub fn all_campaigns(&self) -> Result<Vec<(Client, ProviderKind, CampaignResult)>, NetError> {
        let mut out = Vec::with_capacity(9);
        for client in Client::all() {
            for provider in ProviderKind::all() {
                out.push((client, provider, self.campaign(client, provider)?));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_matches_paper() {
        let world = NorthAmerica::new();
        let set = ExperimentSet::quick(&world);
        let r = set.fig2().unwrap();
        // Routes: [Direct, via UAlberta, via UMich]; for every size the
        // paper finds via-UAlberta fastest and via-UMich slowest.
        for si in 0..r.sizes.len() {
            let direct = r.stats(si, 0).mean;
            let ua = r.stats(si, 1).mean;
            let um = r.stats(si, 2).mean;
            assert!(ua < direct, "size {si}: UAlberta {ua} !< direct {direct}");
            assert!(direct < um, "size {si}: direct {direct} !< UMich {um}");
        }
        assert_eq!(r.ranking(), vec![1, 0, 2]);
    }

    #[test]
    fn fig4_direct_wins_for_dropbox_from_ubc() {
        let world = NorthAmerica::new();
        let set = ExperimentSet::quick(&world);
        let r = set.fig4().unwrap();
        assert_eq!(
            r.ranking(),
            vec![0, 1, 2],
            "paper: Direct fastest, UMich slowest"
        );
    }

    #[test]
    fn traceroutes_reproduce_fig5_fig6() {
        let world = NorthAmerica::new();
        let set = ExperimentSet::quick(&world);
        let f5 = set.fig5();
        let f6 = set.fig6();
        let cmp = detour_core::compare_traceroutes(&f5, &f6);
        assert_eq!(cmp.junction.as_deref(), Some("vncv1rtr2.canarie.ca"));
        assert!(cmp.only_in_first.iter().any(|h| h.contains("pacificwave")));
    }
}
