//! The delta-sync study: does a chunk-caching DTN change the detour
//! arithmetic?
//!
//! The paper's workload deletes the remote copy before every run, so every
//! transfer ships the full file and a detour only wins when the sum of two
//! good legs beats one bad direct path. Real sync workloads are different:
//! a working set mutates round by round, rsync delta encoding shrinks each
//! (basis, target) pair, and a relay with a content-addressed chunk store
//! ([`relay::ChunkStore`]) deduplicates content *across* tenants replicating
//! the same dataset. This module measures how those two savings move the
//! paper's win/loss frontier.
//!
//! Three arms per (tenant, round), all on the calibrated
//! [`NorthAmerica`](crate::NorthAmerica) map and all with identical seeds
//! (same background-traffic realization, same capacity jitter):
//!
//! 1. **direct** — upload the changed files to the provider in full;
//!    provider APIs accept neither deltas nor manifests.
//! 2. **store-and-forward** — the paper's detour: fresh rsync legs ship the
//!    full content to the DTN, then the DTN uploads it.
//! 3. **delta-sync detour** — the rsync leg carries the exact
//!    [`RsyncWirePlan`] for the (basis, target) pair, deduplicated against
//!    the DTN's shared chunk store; the upload leg still carries the full
//!    content.
//!
//! A **flip** is a (tenant, round) cell where arms 2 and 3 disagree on
//! whether the detour beats direct — the cells where delta-sync changes the
//! routing decision itself, not just its margin. The canonical flip is the
//! paper's own negative result: UCLA's 2.3 Mbps last mile makes
//! store-and-forward useless (§III-C), but once only a delta or a manifest
//! has to cross that last mile, the detour wins after all.

use crate::northamerica::{Client, NorthAmerica};
use cloudstore::{ProviderKind, UploadOptions};
use detour_core::{run_job, Route};
use measure::{RunProtocol, Table};
use relay::{detour_upload_sync, ChunkStats, ChunkStore, SyncAttachment};
use std::cell::RefCell;
use std::rc::Rc;
use transfer::syncpop::{MutationMix, SyncPopulation, SyncPopulationConfig};
use transfer::{ChunkManifest, RsyncWirePlan, DEFAULT_CHUNK_SIZE};

/// Rsync block size for the exact wire plans (finer than the dedup chunk:
/// delta granules, not store keys).
const BLOCK_SIZE: usize = 2048;

/// Knobs for one study run.
#[derive(Debug, Clone, Copy)]
pub struct SyncStudyConfig {
    /// Tenants replicating the shared dataset, cycled over UBC, UCLA and
    /// Purdue in that order (UBC warms the cache, UCLA is the paper's
    /// detour-never-helps client, Purdue its pathological one).
    pub tenants: u32,
    /// Files in the working set.
    pub files: u32,
    /// Mutation rounds after the initial replication (round 0).
    pub rounds: u32,
    /// Size of each file in KiB.
    pub file_kb: u32,
    /// DTN chunk-store capacity in MiB.
    pub cache_mb: u32,
    /// Base seed; per-cell simulator seeds derive from it via the campaign
    /// seed protocol, so every arm of a cell sees the same world.
    pub seed: u64,
}

impl Default for SyncStudyConfig {
    fn default() -> Self {
        SyncStudyConfig {
            tenants: 3,
            files: 4,
            rounds: 3,
            file_kb: 256,
            cache_mb: 64,
            seed: 7,
        }
    }
}

/// One (tenant, round) cell: wire-byte accounting plus the three timed arms.
#[derive(Debug, Clone)]
pub struct SyncRow {
    /// Tenant index.
    pub tenant: u32,
    /// The tenant's measuring site.
    pub client: Client,
    /// Round number; 0 is the initial replication.
    pub round: u32,
    /// Files that changed this round.
    pub changed_files: u32,
    /// Full payload bytes of the changed files.
    pub full_bytes: u64,
    /// Rsync wire bytes had the DTN copy been deleted (the paper's
    /// workload).
    pub fresh_wire: u64,
    /// Exact rsync wire bytes against the previous round's basis.
    pub delta_wire: u64,
    /// Wire bytes actually shipped on the rsync leg after consulting the
    /// chunk store: `min(delta, manifest + missing chunks)` plus the
    /// handshake/signature/ack envelope.
    pub sync_wire: u64,
    /// Chunks the store already held when this cell's sync arm ran.
    pub hit_chunks: u64,
    /// Chunks in the cell's manifest.
    pub total_chunks: u64,
    /// Arm 1: direct full upload.
    pub direct_secs: f64,
    /// Arm 2: fresh store-and-forward detour.
    pub relay_secs: f64,
    /// Arm 3: delta-sync detour through the chunk store.
    pub sync_secs: f64,
}

impl SyncRow {
    /// Does the paper's detour beat direct in this cell?
    pub fn detour_wins_fresh(&self) -> bool {
        self.relay_secs < self.direct_secs
    }

    /// Does the delta-sync detour beat direct in this cell?
    pub fn detour_wins_sync(&self) -> bool {
        self.sync_secs < self.direct_secs
    }

    /// Did delta-sync change the routing decision (win/loss flip)?
    pub fn flipped(&self) -> bool {
        self.detour_wins_fresh() != self.detour_wins_sync()
    }
}

/// Full study output: per-cell rows plus the DTN store's final counters.
#[derive(Debug, Clone)]
pub struct SyncStudyReport {
    /// One row per (tenant, round) with at least one changed file, in
    /// execution order (rounds outer, tenants inner).
    pub rows: Vec<SyncRow>,
    /// The shared DTN chunk store's cumulative counters after the run.
    pub store_stats: ChunkStats,
}

impl SyncStudyReport {
    /// Total payload bytes across all cells.
    pub fn full_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.full_bytes).sum()
    }

    /// Total wire bytes under the paper's deleted-basis workload.
    pub fn fresh_wire(&self) -> u64 {
        self.rows.iter().map(|r| r.fresh_wire).sum()
    }

    /// Total wire bytes with delta encoding alone (no chunk store).
    pub fn delta_wire(&self) -> u64 {
        self.rows.iter().map(|r| r.delta_wire).sum()
    }

    /// Total wire bytes actually shipped on the sync arm's rsync legs.
    pub fn sync_wire(&self) -> u64 {
        self.rows.iter().map(|r| r.sync_wire).sum()
    }

    /// Rsync-leg bytes saved versus the paper's workload, as a percentage.
    pub fn savings_pct(&self) -> f64 {
        let fresh = self.fresh_wire();
        if fresh == 0 {
            0.0
        } else {
            100.0 * (fresh - self.sync_wire()) as f64 / fresh as f64
        }
    }

    /// Chunk-cache hit rate over the whole study.
    pub fn hit_rate(&self) -> f64 {
        self.store_stats.hit_rate()
    }

    /// Cells where delta-sync changed the win/loss decision.
    pub fn flips(&self) -> u32 {
        self.rows.iter().filter(|r| r.flipped()).count() as u32
    }

    /// Cells the paper's store-and-forward detour wins.
    pub fn wins_fresh(&self) -> u32 {
        self.rows.iter().filter(|r| r.detour_wins_fresh()).count() as u32
    }

    /// Cells the delta-sync detour wins.
    pub fn wins_sync(&self) -> u32 {
        self.rows.iter().filter(|r| r.detour_wins_sync()).count() as u32
    }

    /// The per-cell table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "delta-sync study (arms: direct / store-and-forward / delta-sync detour)",
            &[
                "tenant", "round", "files", "KB full", "KB fresh", "KB delta", "KB sync", "hits",
                "direct s", "s-f s", "sync s", "winner",
            ],
        );
        for r in &self.rows {
            let winner = match (r.detour_wins_fresh(), r.detour_wins_sync()) {
                (false, true) => "detour (flip)",
                (true, false) => "direct (flip)",
                (true, true) => "detour",
                (false, false) => "direct",
            };
            t.row(vec![
                format!("{} {}", r.tenant, r.client.name()),
                r.round.to_string(),
                r.changed_files.to_string(),
                (r.full_bytes / 1024).to_string(),
                (r.fresh_wire / 1024).to_string(),
                (r.delta_wire / 1024).to_string(),
                (r.sync_wire / 1024).to_string(),
                format!("{}/{}", r.hit_chunks, r.total_chunks),
                format!("{:.2}", r.direct_secs),
                format!("{:.2}", r.relay_secs),
                format!("{:.2}", r.sync_secs),
                winner.to_string(),
            ]);
        }
        t
    }

    /// Table plus the headline summary lines.
    pub fn render(&self) -> String {
        format!(
            "{}\nrsync-leg bytes: fresh {} KB, delta {} KB, shipped {} KB ({:.1}% saved)\n\
             chunk cache: {:.1}% hit rate ({} hits / {} probes, {} admitted, {} evicted)\n\
             detour wins {} of {} cells fresh, {} with delta-sync ({} flip(s))\n",
            self.table().render(),
            self.fresh_wire() / 1024,
            self.delta_wire() / 1024,
            self.sync_wire() / 1024,
            self.savings_pct(),
            100.0 * self.hit_rate(),
            self.store_stats.hits,
            self.store_stats.probes,
            self.store_stats.admitted,
            self.store_stats.evicted,
            self.wins_fresh(),
            self.rows.len(),
            self.wins_sync(),
            self.flips(),
        )
    }
}

/// The tenant's measuring site: UBC first (warms the shared store), then
/// UCLA (the paper's last-mile-limited client), then Purdue.
fn tenant_site(t: u32) -> Client {
    [Client::Ubc, Client::Ucla, Client::Purdue][t as usize % 3]
}

/// Run the study: one shared mutating dataset, every tenant replicating it
/// to Google Drive each round over all three arms, with one chunk store at
/// the UAlberta DTN shared across tenants and rounds.
///
/// Fully deterministic: file contents derive from `cfg.seed`, per-cell
/// simulator seeds from the campaign seed protocol, and the chunk store is
/// consulted in a fixed order (rounds outer, tenants inner — the cell's
/// simulations never interleave).
pub fn run_sync_study(world: &NorthAmerica, cfg: SyncStudyConfig) -> SyncStudyReport {
    assert!(
        cfg.tenants > 0 && cfg.files > 0 && cfg.file_kb > 0,
        "degenerate study config"
    );
    let provider = world.provider(ProviderKind::GoogleDrive);
    let store = Rc::new(RefCell::new(ChunkStore::new(
        cfg.cache_mb as u64 * 1024 * 1024,
    )));
    let mut pop = SyncPopulation::new(
        cfg.seed,
        SyncPopulationConfig {
            files: cfg.files as usize,
            file_len: cfg.file_kb as usize * 1024,
            mix: MutationMix::desktop(),
            max_edits: 16,
            max_append: 4096,
            max_rewrite: 16 * 1024,
        },
    );
    // Every tenant has replicated up to the previous round, so one shared
    // basis stands in for all of their remote copies.
    let mut basis: Vec<Vec<u8>> = vec![Vec::new(); cfg.files as usize];
    let mut rows = Vec::new();

    for round in 0..=cfg.rounds {
        if round > 0 {
            pop.advance();
        }
        let changed: Vec<usize> = (0..cfg.files as usize)
            .filter(|&i| pop.file(i) != basis[i].as_slice())
            .collect();
        if changed.is_empty() {
            continue;
        }

        // Aggregate the round's rsync session: one summed wire plan and one
        // merged manifest (per-file chunking, so chunk identities survive
        // across rounds regardless of which neighbours changed).
        let mut plan = RsyncWirePlan {
            handshake_bytes: 0,
            signature_bytes: 0,
            delta_bytes: 0,
            ack_bytes: 0,
        };
        let mut full_bytes = 0u64;
        let mut manifest = ChunkManifest {
            chunk_size: DEFAULT_CHUNK_SIZE,
            chunks: Vec::new(),
        };
        for &i in &changed {
            let target = pop.file(i);
            let p = RsyncWirePlan::exact(&basis[i], target, BLOCK_SIZE);
            plan.handshake_bytes += p.handshake_bytes;
            plan.signature_bytes += p.signature_bytes;
            plan.delta_bytes += p.delta_bytes;
            plan.ack_bytes += p.ack_bytes;
            full_bytes += target.len() as u64;
            manifest
                .chunks
                .extend(ChunkManifest::of(target, DEFAULT_CHUNK_SIZE).chunks);
        }
        let fresh_plan = RsyncWirePlan::fresh(full_bytes);

        for tenant in 0..cfg.tenants {
            let site = tenant_site(tenant);
            let client = world.client(site);
            let seed =
                RunProtocol::run_seed(&format!("sync-study/{}/{}/{}", cfg.seed, tenant, round), 0);
            let opts = UploadOptions::warm(client.class);

            // Arm 1: direct — providers take full content only.
            let mut sim = world.build_sim(seed);
            let direct = run_job(
                &mut sim,
                client.node,
                client.class,
                &provider,
                full_bytes,
                &Route::Direct,
                opts,
            )
            .expect("direct upload on the calibrated map");

            // Arm 2: the paper's store-and-forward (fresh rsync legs).
            let mut sim = world.build_sim(seed);
            let relayed = run_job(
                &mut sim,
                client.node,
                client.class,
                &provider,
                full_bytes,
                &Route::via(world.hop_ualberta()),
                opts,
            )
            .expect("store-and-forward detour on the calibrated map");

            // Arm 3: delta-sync detour. Preview the dedup price on a clone
            // so the shared store's counters reflect the real legs only.
            let dedup = store.borrow().clone().plan(&manifest);
            let shipped = plan.delta_bytes.min(dedup.wire_bytes);
            let hop = world.hop_ualberta();
            let mut sim = world.build_sim(seed);
            let synced = detour_upload_sync(
                &mut sim,
                vec![client.node, hop.node],
                vec![client.class, hop.class],
                &provider,
                full_bytes,
                opts,
                SyncAttachment {
                    plan,
                    manifest: manifest.clone(),
                    stores: vec![Rc::clone(&store)],
                },
            )
            .expect("delta-sync detour on the calibrated map");

            rows.push(SyncRow {
                tenant,
                client: site,
                round,
                changed_files: changed.len() as u32,
                full_bytes,
                fresh_wire: fresh_plan.total_bytes(),
                delta_wire: plan.total_bytes(),
                sync_wire: plan.total_bytes() - plan.delta_bytes + shipped,
                hit_chunks: dedup.hit_chunks,
                total_chunks: dedup.total_chunks,
                direct_secs: direct.secs(),
                relay_secs: relayed.secs(),
                sync_secs: synced.total.as_secs_f64(),
            });
        }

        for (i, b) in basis.iter_mut().enumerate() {
            *b = pop.file(i).to_vec();
        }
    }

    let store_stats = store.borrow().stats();
    SyncStudyReport { rows, store_stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyncStudyConfig {
        SyncStudyConfig {
            tenants: 2,
            files: 2,
            rounds: 1,
            file_kb: 384,
            cache_mb: 16,
            seed: 7,
        }
    }

    #[test]
    fn shared_dataset_dedups_across_tenants() {
        let world = NorthAmerica::new();
        let report = run_sync_study(&world, tiny());
        // Both tenants report every round (the desktop mix always mutates
        // something by round 1; round 0 changes everything by definition).
        assert_eq!(report.rows.len(), 4, "{:?}", report.rows);
        // Tenant 0 warms the store, tenant 1's replication rides on it.
        let t1r0 = &report.rows[1];
        assert_eq!((t1r0.tenant, t1r0.round), (1, 0));
        assert_eq!(t1r0.hit_chunks, t1r0.total_chunks);
        assert!(report.hit_rate() > 0.0);
        // Delta + dedup must beat the paper's deleted-basis workload.
        assert!(
            report.sync_wire() < report.fresh_wire() / 2,
            "sync {} vs fresh {}",
            report.sync_wire(),
            report.fresh_wire()
        );
        assert!(report.savings_pct() > 50.0);
        let text = report.render();
        assert!(text.contains("hit rate"), "{text}");
        assert!(text.contains("flip"), "{text}");
    }

    #[test]
    fn ucla_last_mile_flips_to_detour() {
        // The paper's §III-C: UCLA's 2.3 Mbps last mile makes
        // store-and-forward pointless. With a warmed chunk store, only the
        // manifest crosses the last mile and the detour wins after all.
        let world = NorthAmerica::new();
        let report = run_sync_study(&world, tiny());
        let ucla: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.client == Client::Ucla)
            .collect();
        assert!(!ucla.is_empty());
        for r in &ucla {
            assert!(
                !r.detour_wins_fresh(),
                "store-and-forward must lose at UCLA: {r:?}"
            );
            assert!(
                r.detour_wins_sync(),
                "delta-sync detour must win at UCLA: {r:?}"
            );
            assert!(r.flipped());
        }
        assert!(report.flips() >= ucla.len() as u32);
    }

    #[test]
    fn study_is_deterministic() {
        let world = NorthAmerica::new();
        let a = run_sync_study(&world, tiny());
        let b = run_sync_study(&world, tiny());
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.sync_wire, y.sync_wire);
            assert_eq!(x.hit_chunks, y.hit_chunks);
            assert_eq!(x.direct_secs.to_bits(), y.direct_secs.to_bits());
            assert_eq!(x.sync_secs.to_bits(), y.sync_secs.to_bits());
        }
        assert_eq!(a.store_stats, b.store_stats);
    }
}
