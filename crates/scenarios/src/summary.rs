//! Table I / Table IV / Table V renderers and the Figure 3 geography.

use crate::northamerica::{Client, NorthAmerica};
use cloudstore::ProviderKind;
use detour_core::CampaignResult;
use measure::{OverlapVerdict, Table};
use netsim::geo::places;

/// Table I: per (client × provider), order the routes fastest→slowest by
/// mean time averaged across sizes.
pub fn table1(results: &[(Client, ProviderKind, CampaignResult)]) -> Table {
    let mut t = Table::new(
        "Table I: fastest/slowest routes per client and service",
        &["Client", "Google Drive", "Dropbox", "OneDrive"],
    );
    for client in Client::all() {
        let mut row = vec![client.name().to_string()];
        for provider in ProviderKind::all() {
            let cell = results
                .iter()
                .find(|(c, p, _)| *c == client && *p == provider)
                .map(|(_, _, r)| ranking_cell(r))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        t.row(row);
    }
    t
}

/// "Fastest: via UAlberta, Fast: Direct, Slowest: via UMich" — the paper's
/// Table I cell format.
pub fn ranking_cell(r: &CampaignResult) -> String {
    let ranking = r.ranking();
    let labels: Vec<String> = ranking.iter().map(|&i| r.routes[i].label()).collect();
    match labels.len() {
        0 => "-".to_string(),
        1 => format!("Only: {}", labels[0]),
        2 => format!("Fastest: {}, Slowest: {}", labels[0], labels[1]),
        _ => format!(
            "Fastest: {}, Fast: {}, Slowest: {}",
            labels[0],
            labels[1..labels.len() - 1].join(", "),
            labels[labels.len() - 1]
        ),
    }
}

/// Table IV: Purdue mean±σ for Dropbox and OneDrive, with overlap verdicts
/// (the paper's §III-B analysis).
pub fn table4(dropbox: &CampaignResult, onedrive: &CampaignResult) -> Table {
    let mut t = Table::new(
        "Table IV: mean and standard deviation of upload times from Purdue (s)",
        &[
            "File size (MB)",
            "Type",
            "Mean (s)",
            "Std dev",
            "±1σ vs Direct",
        ],
    );
    for (name, r) in [("Dropbox", dropbox), ("OneDrive", onedrive)] {
        // Iterate sizes from largest (the paper lists 100 MB before 60 MB).
        for si in (0..r.sizes.len()).rev() {
            let direct = r.stats(si, 0);
            for (ri, route) in r.routes.iter().enumerate() {
                let s = r.stats(si, ri);
                let verdict = if ri == 0 {
                    "-".to_string()
                } else {
                    match direct.overlap_1sigma(s) {
                        OverlapVerdict::Overlapping => "overlaps".to_string(),
                        OverlapVerdict::Separated => "separated".to_string(),
                    }
                };
                t.row(vec![
                    format!("{}", r.sizes[si] / netsim::units::MB),
                    format!("{name} ({})", route.label()),
                    format!("{:.2}", s.mean),
                    format!("{:.2}", s.std_dev),
                    verdict,
                ]);
            }
        }
    }
    t
}

/// Table V: for each client, the fastest route per provider (the paper's
/// map panels, as text).
pub fn table5(results: &[(Client, ProviderKind, CampaignResult)]) -> Table {
    let mut t = Table::new(
        "Table V: geographic summary of fastest routes [Direct: solid; Detour: dashed]",
        &[
            "Client",
            "Service",
            "Fastest route",
            "Mean (s, largest size)",
        ],
    );
    for (client, provider, r) in results {
        let best = r.ranking()[0];
        let last_size = r.sizes.len() - 1;
        t.row(vec![
            client.name().to_string(),
            provider.display_name().to_string(),
            r.routes[best].label(),
            format!("{:.2}", r.stats(last_size, best).mean),
        ]);
    }
    t
}

/// Fig 3: locations of clients, intermediate nodes and cloud-storage
/// servers, with great-circle distances to each provider.
pub fn geography_table(world: &NorthAmerica) -> Table {
    let mut t = Table::new(
        "Fig 3: locations of clients, intermediate nodes and cloud-storage servers",
        &[
            "Site",
            "Role",
            "Location",
            "→MTV (km)",
            "→Ashburn (km)",
            "→Seattle (km)",
        ],
    );
    let rows: [(&str, &str, netsim::geo::GeoPoint); 8] = [
        ("UBC", "client (PlanetLab)", places::UBC),
        ("UAlberta", "DTN (cluster)", places::UALBERTA),
        ("UMich", "DTN (PlanetLab)", places::UMICH),
        ("Purdue", "client (PlanetLab)", places::PURDUE),
        ("UCLA", "client (PlanetLab)", places::UCLA),
        ("Google Drive", "POP (Mountain View)", places::MOUNTAIN_VIEW),
        ("Dropbox", "POP (Ashburn)", places::ASHBURN),
        ("OneDrive", "POP (Seattle)", places::SEATTLE),
    ];
    let _ = world;
    for (name, role, loc) in rows {
        t.row(vec![
            name.to_string(),
            role.to_string(),
            loc.to_string(),
            format!("{:.0}", loc.distance_km(&places::MOUNTAIN_VIEW)),
            format!("{:.0}", loc.distance_km(&places::ASHBURN)),
            format!("{:.0}", loc.distance_km(&places::SEATTLE)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use detour_core::Route;
    use measure::Stats;

    fn fake_result(means: &[(&str, f64)]) -> CampaignResult {
        let routes: Vec<Route> = means
            .iter()
            .map(|(label, _)| {
                if *label == "Direct" {
                    Route::Direct
                } else {
                    Route::via(detour_core::Hop::new(
                        netsim::topology::NodeId(9),
                        netsim::flow::FlowClass::Research,
                        label.trim_start_matches("via "),
                    ))
                }
            })
            .collect();
        let cells = vec![means
            .iter()
            .map(|(_, m)| Stats {
                n: 5,
                mean: *m,
                std_dev: 1.0,
                min: *m,
                max: *m,
            })
            .collect()];
        CampaignResult {
            client_name: "X".into(),
            provider_name: "Y".into(),
            routes,
            sizes: vec![100 * netsim::units::MB],
            cells,
        }
    }

    #[test]
    fn ranking_cell_format() {
        let r = fake_result(&[
            ("Direct", 86.92),
            ("via UAlberta", 35.79),
            ("via UMich", 132.17),
        ]);
        assert_eq!(
            ranking_cell(&r),
            "Fastest: via UAlberta, Fast: Direct, Slowest: via UMich"
        );
    }

    #[test]
    fn table1_has_one_row_per_client() {
        let r = fake_result(&[("Direct", 1.0), ("via UAlberta", 2.0)]);
        let mut results = Vec::new();
        for c in Client::all() {
            for p in ProviderKind::all() {
                results.push((c, p, r.clone()));
            }
        }
        let t = table1(&results);
        assert_eq!(t.len(), 3);
        assert!(t.render().contains("Fastest: Direct"));
    }

    #[test]
    fn geography_distances_sane() {
        let world = NorthAmerica::new();
        let t = geography_table(&world);
        let text = t.render();
        // UBC is ~1,300 km from Mountain View and ~190 km from Seattle.
        assert!(text.contains("UBC"));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn table5_lists_every_campaign() {
        let r = fake_result(&[("Direct", 5.0), ("via UAlberta", 2.0)]);
        let results = vec![
            (Client::Ubc, ProviderKind::GoogleDrive, r.clone()),
            (Client::Purdue, ProviderKind::Dropbox, r),
        ];
        let t = table5(&results);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("via UAlberta"));
    }
}
