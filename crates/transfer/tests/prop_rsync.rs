//! Property tests: the rsync round trip is the identity, for arbitrary
//! basis/target pairs and block sizes.

use proptest::prelude::*;
use transfer::syncpop::{mutate, MutationKind, SyncPopulation, SyncPopulationConfig};
use transfer::{apply_delta, compute_delta, DeltaOp, FileGen, Md5, RsyncWirePlan, Signature};

/// Arbitrary single mutations for history-driven tests: a kind selector
/// plus two free parameters, mapped onto the enum's fields.
fn mutation_strategy() -> impl Strategy<Value = MutationKind> {
    (0u8..5, 0usize..24_000, 1usize..8192).prop_map(|(kind, a, b)| match kind {
        0 => MutationKind::Edit { edits: 1 + a % 32 },
        1 => MutationKind::Append {
            bytes: 1 + a % 4096,
        },
        2 => MutationKind::Rewrite { offset: a, len: b },
        3 => MutationKind::Truncate { new_len: a },
        _ => MutationKind::Churn {
            new_len: a % 12_000,
        },
    })
}

/// The wire cost the plan must report for a concrete delta: 5 bytes framing
/// per op (+ the payload for literals) plus the 40-byte trailer — recomputed
/// here from the op list, independently of `Delta::wire_bytes`.
fn expected_delta_wire_bytes(ops: &[DeltaOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            DeltaOp::Literal(v) => 5 + v.len() as u64,
            DeltaOp::Copy { .. } => 5,
        })
        .sum::<u64>()
        + 40
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// patch(basis, delta(basis, target)) == target — the fundamental
    /// correctness property of the rsync algorithm.
    #[test]
    fn round_trip_identity(
        basis in prop::collection::vec(any::<u8>(), 0..8192),
        target in prop::collection::vec(any::<u8>(), 0..8192),
        block_size in 1usize..2048,
    ) {
        let sig = Signature::compute(&basis, block_size);
        let delta = compute_delta(&sig, &target);
        let rebuilt = apply_delta(&basis, block_size, &delta).unwrap();
        prop_assert_eq!(rebuilt, target);
    }

    /// Round trip over structured (generated + mutated) files, which have
    /// far more block matches than independent random buffers.
    #[test]
    fn round_trip_similar_files(
        seed in any::<u64>(),
        len in 0usize..40_000,
        edits in 0usize..20,
        append in 0usize..2000,
        block_size in prop::sample::select(vec![128usize, 512, 2048, 8192]),
    ) {
        let g = FileGen::new(seed);
        let basis = g.random_file(len);
        let target = g.similar_file(&basis, edits, append);
        let sig = Signature::compute(&basis, block_size);
        let delta = compute_delta(&sig, &target);
        let rebuilt = apply_delta(&basis, block_size, &delta).unwrap();
        prop_assert_eq!(Md5::digest(&rebuilt), delta.target_md5);
        prop_assert_eq!(rebuilt, target);
    }

    /// Truncation: syncing any prefix of the basis back over the basis is
    /// still the identity, and a truncated target never costs more literal
    /// bytes than its own length.
    #[test]
    fn round_trip_truncated_target(
        seed in any::<u64>(),
        len in 1usize..30_000,
        keep_permille in 0usize..=1000,
        block_size in prop::sample::select(vec![128usize, 512, 2048]),
    ) {
        let g = FileGen::new(seed);
        let basis = g.random_file(len);
        let target = &basis[..len * keep_permille / 1000];
        let sig = Signature::compute(&basis, block_size);
        let delta = compute_delta(&sig, target);
        let rebuilt = apply_delta(&basis, block_size, &delta).unwrap();
        prop_assert_eq!(&rebuilt[..], target);
        prop_assert!(delta.literal_bytes() <= target.len() as u64);
    }

    /// Pure append: the tail beyond the basis is the only new content, so
    /// the delta's literal payload is bounded by the appended bytes plus at
    /// most one partial block of resynchronization slack.
    #[test]
    fn round_trip_pure_append(
        seed in any::<u64>(),
        len in 0usize..30_000,
        append in 0usize..4000,
        block_size in prop::sample::select(vec![128usize, 512, 2048]),
    ) {
        let g = FileGen::new(seed);
        let basis = g.random_file(len);
        let mut target = basis.clone();
        target.extend(g.random_file(append));
        let sig = Signature::compute(&basis, block_size);
        let delta = compute_delta(&sig, &target);
        let rebuilt = apply_delta(&basis, block_size, &delta).unwrap();
        prop_assert_eq!(Md5::digest(&rebuilt), delta.target_md5);
        prop_assert_eq!(rebuilt, target);
        prop_assert!(
            delta.literal_bytes() <= (append + block_size) as u64,
            "append {} of {} literal bytes at block {}",
            append, delta.literal_bytes(), block_size
        );
    }

    /// Random edits + truncation + append combined — the messy real-world
    /// shape of a re-uploaded file — still round-trips exactly.
    #[test]
    fn round_trip_edit_truncate_append(
        seed in any::<u64>(),
        len in 1usize..30_000,
        edits in 0usize..16,
        keep_permille in 0usize..=1000,
        append in 0usize..3000,
        block_size in prop::sample::select(vec![128usize, 512, 2048, 8192]),
    ) {
        let g = FileGen::new(seed);
        let basis = g.random_file(len);
        let edited = g.similar_file(&basis, edits, 0);
        let mut target = edited[..edited.len() * keep_permille / 1000].to_vec();
        target.extend(g.random_file(append));
        let sig = Signature::compute(&basis, block_size);
        let delta = compute_delta(&sig, &target);
        let rebuilt = apply_delta(&basis, block_size, &delta).unwrap();
        prop_assert_eq!(Md5::digest(&rebuilt), delta.target_md5);
        prop_assert_eq!(rebuilt, target);
    }

    /// The delta never carries more literal payload than the target itself,
    /// and the wire plan's delta bytes dominate the literal payload.
    #[test]
    fn delta_is_bounded(
        seed in any::<u64>(),
        len in 0usize..20_000,
        block_size in prop::sample::select(vec![512usize, 2048]),
    ) {
        let g = FileGen::new(seed);
        let target = g.random_file(len);
        let sig = Signature::empty(block_size);
        let delta = compute_delta(&sig, &target);
        prop_assert!(delta.literal_bytes() <= len as u64);
        let plan = RsyncWirePlan::exact(&[], &target, block_size);
        prop_assert!(plan.delta_bytes >= delta.literal_bytes());
        prop_assert_eq!(plan, RsyncWirePlan::fresh(len as u64));
    }

    /// Arbitrary mutation histories (edit/append/rewrite/truncate/churn
    /// sequences) driven through the same `mutate` the sync populations use:
    /// every step's signature → delta → patch round trip is the identity,
    /// `target_md5` matches the reconstruction, and the exact wire plan's
    /// byte accounting agrees with an independent recount of the op list.
    #[test]
    fn round_trip_mutation_history(
        seed in any::<u64>(),
        len in 0usize..16_384,
        history in prop::collection::vec(mutation_strategy(), 1..6),
        block_size in prop::sample::select(vec![512usize, 2048, 8192]),
    ) {
        let mut basis = FileGen::new(seed).random_file(len);
        for (step, kind) in history.iter().enumerate() {
            let target = mutate(&basis, kind, seed ^ (step as u64) << 32);
            let sig = Signature::compute(&basis, block_size);
            let delta = compute_delta(&sig, &target);
            let rebuilt = apply_delta(&basis, block_size, &delta).unwrap();
            prop_assert_eq!(Md5::digest(&rebuilt), delta.target_md5);
            prop_assert_eq!(&rebuilt, &target);
            let plan = RsyncWirePlan::exact(&basis, &target, block_size);
            prop_assert_eq!(plan.delta_bytes, expected_delta_wire_bytes(&delta.ops));
            prop_assert_eq!(plan.signature_bytes, 32 + sig.block_count() as u64 * 24);
            prop_assert_eq!(
                plan.total_bytes(),
                plan.handshake_bytes + plan.signature_bytes + plan.delta_bytes + plan.ack_bytes
            );
            basis = target;
        }
    }

    /// `SyncPopulation::advance` histories: every change it reports carries
    /// a basis that round-trips to the file's new content, with exact wire
    /// accounting at each round.
    #[test]
    fn round_trip_sync_population_rounds(
        seed in any::<u64>(),
        rounds in 1u32..4,
        block_size in prop::sample::select(vec![512usize, 2048]),
    ) {
        let cfg = SyncPopulationConfig {
            files: 3,
            file_len: 4096,
            max_edits: 8,
            max_append: 1024,
            max_rewrite: 1024,
            ..SyncPopulationConfig::default()
        };
        let mut pop = SyncPopulation::new(seed, cfg);
        for _ in 0..rounds {
            for c in pop.advance() {
                let target = pop.file(c.file);
                let sig = Signature::compute(&c.basis, block_size);
                let delta = compute_delta(&sig, target);
                let rebuilt = apply_delta(&c.basis, block_size, &delta).unwrap();
                prop_assert_eq!(Md5::digest(&rebuilt), delta.target_md5);
                prop_assert_eq!(&rebuilt[..], target);
                let plan = RsyncWirePlan::exact(&c.basis, target, block_size);
                prop_assert_eq!(plan.delta_bytes, expected_delta_wire_bytes(&delta.ops));
                prop_assert_eq!(plan.delta_bytes, delta.wire_bytes());
            }
        }
    }

    /// Streaming MD5 agrees with one-shot MD5 under arbitrary chunking.
    #[test]
    fn md5_chunking_invariance(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        cuts in prop::collection::vec(1usize..4096, 0..6),
    ) {
        let oneshot = Md5::digest(&data);
        let mut ctx = Md5::new();
        let mut rest: &[u8] = &data;
        for c in cuts {
            let take = c.min(rest.len());
            ctx.update(&rest[..take]);
            rest = &rest[take..];
        }
        ctx.update(rest);
        prop_assert_eq!(ctx.finalize(), oneshot);
    }
}
