//! # transfer — file-transfer tooling
//!
//! The paper moves files to its intermediate node with `rsync` and notes two
//! things: files on the DTN are deleted before each run (so rsync gets no
//! delta benefit) and the files are random data (so nothing compresses).
//! This crate implements the actual machinery so those statements can be
//! *verified* rather than assumed:
//!
//! * [`filegen`] — deterministic `dd`-style random file generation, plus a
//!   mutator for producing "similar" files (delta-transfer tests).
//! * [`md5`] — the MD5 digest (RFC 1321), rsync's strong block checksum,
//!   implemented from scratch and checked against the RFC test vectors.
//! * [`rolling`] — rsync's 32-bit rolling checksum with O(1) window slide.
//! * [`signature`] / [`delta`] / [`patch`] — the full rsync round trip:
//!   block signatures of the basis file, delta computation against a rolling
//!   window over the target, and patch application.
//! * [`wire`] — the byte-cost model used by the WAN simulator: exactly how
//!   many bytes cross the wire for a given (basis, target) pair, and the
//!   closed-form for the paper's fresh-file case.
//! * [`syncpop`] — mutating sync populations: seeded file sets that evolve
//!   round by round (edits/appends/rewrites/truncations/churn), so the delta
//!   path is exercised by realistic workloads instead of fresh copies.
//! * [`chunk`] — content-addressed chunk manifests, the unit of cross-user
//!   deduplication at DTN relays.
//!
//! ## The rsync round trip
//!
//! ```
//! use transfer::{apply_delta, compute_delta, FileGen, Signature};
//!
//! let gen = FileGen::new(7);
//! let basis = gen.random_file(50_000);            // the DTN's old copy
//! let target = gen.similar_file(&basis, 3, 128);  // the user's new version
//!
//! let sig = Signature::compute(&basis, 2048);     // receiver → sender
//! let delta = compute_delta(&sig, &target);       // sender → receiver
//! let rebuilt = apply_delta(&basis, 2048, &delta).unwrap();
//! assert_eq!(rebuilt, target);
//! // Only the changed blocks crossed the wire:
//! assert!(delta.literal_bytes() < 10_000);
//! ```

pub mod chunk;
pub mod delta;
pub mod filegen;
pub mod md5;
pub mod patch;
pub mod rolling;
pub mod signature;
pub mod syncpop;
pub mod wire;

pub use chunk::{ChunkManifest, ChunkRef, DEFAULT_CHUNK_SIZE};
pub use delta::{compute_delta, Delta, DeltaOp};
pub use filegen::FileGen;
pub use md5::Md5;
pub use patch::apply_delta;
pub use rolling::RollingChecksum;
pub use signature::{BlockSignature, Signature, DEFAULT_BLOCK_SIZE};
pub use syncpop::{
    mutate, FileChange, MutationKind, MutationMix, SyncPopulation, SyncPopulationConfig,
};
pub use wire::{RsyncWirePlan, StreamWirePlan};
