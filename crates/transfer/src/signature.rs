//! Block signatures: the receiver's description of the basis file.
//!
//! In rsync the *receiver* (here: the DTN) splits its existing copy of the
//! file into fixed-size blocks and sends `(rolling, strong)` checksums per
//! block to the sender, which then hunts for those blocks in the new file.

use crate::md5::Md5;
use crate::rolling;
use std::collections::HashMap;

/// Default block size (rsync uses ~700–16 KiB depending on file size; a
/// fixed 2 KiB is a reasonable middle ground for the file sizes in the
/// paper's workload).
pub const DEFAULT_BLOCK_SIZE: usize = 2048;

/// Signature of one basis block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSignature {
    /// Block index in the basis file.
    pub index: u32,
    /// Length (the final block may be short).
    pub len: u32,
    /// 32-bit rolling checksum.
    pub rolling: u32,
    /// 128-bit strong checksum.
    pub strong: [u8; 16],
}

/// The full signature of a basis file.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Block size used.
    pub block_size: usize,
    /// Per-block signatures, in order.
    pub blocks: Vec<BlockSignature>,
    /// rolling checksum -> candidate block indices (collisions possible).
    index: HashMap<u32, Vec<u32>>,
}

impl Signature {
    /// Compute the signature of a basis file.
    pub fn compute(basis: &[u8], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::with_capacity(basis.len() / block_size + 1);
        let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, chunk) in basis.chunks(block_size).enumerate() {
            let rolling = rolling::checksum(chunk);
            let strong = Md5::digest(chunk);
            blocks.push(BlockSignature {
                index: i as u32,
                len: chunk.len() as u32,
                rolling,
                strong,
            });
            index.entry(rolling).or_default().push(i as u32);
        }
        Signature {
            block_size,
            blocks,
            index,
        }
    }

    /// Signature of an empty basis (the paper's fresh-file case).
    pub fn empty(block_size: usize) -> Self {
        Self::compute(&[], block_size)
    }

    /// Candidate blocks whose rolling checksum matches.
    pub fn candidates(&self, rolling: u32) -> &[u32] {
        self.index
            .get(&rolling)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Look up a block that matches both checksums over `window`.
    /// Only full-size blocks participate in rolling matching (short final
    /// blocks are matched separately by the delta generator).
    ///
    /// The strong hash of the window is computed at most once per call —
    /// lazily, on the first length-compatible candidate — no matter how many
    /// blocks collide on the rolling checksum.
    pub fn find_match(&self, rolling: u32, window: &[u8]) -> Option<u32> {
        let mut strong: Option<[u8; 16]> = None;
        for &idx in self.candidates(rolling) {
            let b = &self.blocks[idx as usize];
            if b.len as usize != window.len() {
                continue;
            }
            let s = strong.get_or_insert_with(|| Md5::digest(window));
            if b.strong == *s {
                return Some(idx);
            }
        }
        None
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes this signature occupies on the wire: 4 (rolling) + 16 (strong)
    /// + 4 (index/len bookkeeping) per block, plus a 32-byte header.
    pub fn wire_bytes(&self) -> u64 {
        32 + (self.blocks.len() as u64) * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filegen::FileGen;

    #[test]
    fn block_partitioning() {
        let data = FileGen::new(1).random_file(5000);
        let sig = Signature::compute(&data, 2048);
        assert_eq!(sig.block_count(), 3);
        assert_eq!(sig.blocks[0].len, 2048);
        assert_eq!(sig.blocks[2].len, 5000 - 4096);
    }

    #[test]
    fn empty_basis() {
        let sig = Signature::empty(2048);
        assert_eq!(sig.block_count(), 0);
        assert_eq!(sig.wire_bytes(), 32);
        assert!(sig.candidates(12345).is_empty());
    }

    #[test]
    fn find_match_requires_both_checksums() {
        let data = FileGen::new(2).random_file(8192);
        let sig = Signature::compute(&data, 2048);
        let block0 = &data[..2048];
        let r = rolling::checksum(block0);
        assert_eq!(sig.find_match(r, block0), Some(0));
        // Same rolling value, different content: no match.
        let mut forged = block0.to_vec();
        forged.swap(0, 1); // swapping bytes changes content...
        forged.swap(0, 1); // ...restore; instead corrupt while keeping `a`:
        forged[0] = forged[0].wrapping_add(1);
        forged[1] = forged[1].wrapping_sub(1);
        // `a` is preserved but `b` usually changes; regardless, the strong
        // hash check must reject any content difference when probed with
        // block0's rolling value.
        assert_eq!(sig.find_match(r, &forged), None);
    }

    #[test]
    fn duplicate_heavy_basis_hashes_each_window_once() {
        use crate::rolling;
        // A basis of 16 identical blocks: every candidate list for that
        // rolling value has 16 entries. Probing with a *different* window
        // that collides on the rolling checksum must cost exactly one strong
        // digest, not one per colliding candidate.
        //
        // Collision construction (weights of `b` are linear in position):
        // zeros with x[1]=2 and zeros with x[0]=1, x[2]=1 share
        // a = 2 and b = 2*(L-1).
        const BS: usize = 64;
        let mut block = vec![0u8; BS];
        block[1] = 2;
        let mut forged = vec![0u8; BS];
        forged[0] = 1;
        forged[2] = 1;
        let r = rolling::checksum(&block);
        assert_eq!(
            r,
            rolling::checksum(&forged),
            "constructed windows must collide on the rolling checksum"
        );
        let basis: Vec<u8> = block.iter().copied().cycle().take(16 * BS).collect();
        let sig = Signature::compute(&basis, BS);
        assert_eq!(sig.candidates(r).len(), 16);

        let before = Md5::digest_invocations();
        assert_eq!(sig.find_match(r, &forged), None);
        assert_eq!(
            Md5::digest_invocations() - before,
            1,
            "one strong digest per probed window, even with 16 colliding candidates"
        );

        // A genuine match is still found, also at one digest.
        let before = Md5::digest_invocations();
        assert_eq!(sig.find_match(r, &block), Some(0));
        assert_eq!(Md5::digest_invocations() - before, 1);

        // Length-incompatible candidates never trigger a digest at all.
        let before = Md5::digest_invocations();
        assert_eq!(sig.find_match(r, &forged[..BS - 1]), None);
        assert_eq!(Md5::digest_invocations() - before, 0);
    }

    #[test]
    fn wire_bytes_scale_with_blocks() {
        let data = FileGen::new(3).random_file(100 * 2048);
        let sig = Signature::compute(&data, 2048);
        assert_eq!(sig.wire_bytes(), 32 + 100 * 24);
    }

    #[test]
    fn exact_duplicate_blocks_share_candidates() {
        let block = FileGen::new(4).random_file(2048);
        let mut data = block.clone();
        data.extend_from_slice(&block);
        let sig = Signature::compute(&data, 2048);
        let r = rolling::checksum(&block);
        assert_eq!(sig.candidates(r).len(), 2);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        Signature::compute(b"data", 0);
    }
}
