//! Patch application: the receiver reconstructs the target file.

use crate::delta::{Delta, DeltaOp};
use crate::md5::Md5;
use std::fmt;

/// Errors during patch application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// A copy instruction referenced a basis block that does not exist.
    BadBlockIndex {
        /// The offending index.
        index: u32,
        /// Blocks available.
        available: u32,
    },
    /// Reconstructed length differs from the declared target length.
    LengthMismatch {
        /// What the delta declared.
        expected: u64,
        /// What reconstruction produced.
        actual: u64,
    },
    /// Whole-file checksum failed — the transfer is corrupt.
    ChecksumMismatch,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::BadBlockIndex { index, available } => {
                write!(f, "copy references block {index} but basis has {available}")
            }
            PatchError::LengthMismatch { expected, actual } => {
                write!(f, "reconstructed {actual} bytes, expected {expected}")
            }
            PatchError::ChecksumMismatch => write!(f, "whole-file checksum mismatch"),
        }
    }
}

impl std::error::Error for PatchError {}

/// Apply a delta to the basis file, verifying length and checksum.
pub fn apply_delta(basis: &[u8], block_size: usize, delta: &Delta) -> Result<Vec<u8>, PatchError> {
    assert!(block_size > 0, "block size must be positive");
    let n_blocks = basis.len().div_ceil(block_size) as u32;
    let mut out = Vec::with_capacity(delta.target_len as usize);
    for op in &delta.ops {
        match op {
            DeltaOp::Copy { index } => {
                if *index >= n_blocks {
                    return Err(PatchError::BadBlockIndex {
                        index: *index,
                        available: n_blocks,
                    });
                }
                let start = *index as usize * block_size;
                let end = (start + block_size).min(basis.len());
                out.extend_from_slice(&basis[start..end]);
            }
            DeltaOp::Literal(bytes) => out.extend_from_slice(bytes),
        }
    }
    if out.len() as u64 != delta.target_len {
        return Err(PatchError::LengthMismatch {
            expected: delta.target_len,
            actual: out.len() as u64,
        });
    }
    if Md5::digest(&out) != delta.target_md5 {
        return Err(PatchError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::compute_delta;
    use crate::filegen::FileGen;
    use crate::signature::Signature;

    fn round_trip(basis: &[u8], target: &[u8], bs: usize) {
        let sig = Signature::compute(basis, bs);
        let delta = compute_delta(&sig, target);
        let rebuilt = apply_delta(basis, bs, &delta).expect("patch applies");
        assert_eq!(rebuilt, target);
    }

    #[test]
    fn round_trip_fresh_file() {
        let target = FileGen::new(1).random_file(50_000);
        round_trip(&[], &target, 2048);
    }

    #[test]
    fn round_trip_identical() {
        let data = FileGen::new(2).random_file(30_000);
        round_trip(&data, &data, 2048);
    }

    #[test]
    fn round_trip_edits() {
        let g = FileGen::new(3);
        let basis = g.random_file(60_000);
        let target = g.similar_file(&basis, 25, 1234);
        round_trip(&basis, &target, 2048);
    }

    #[test]
    fn round_trip_shrunk_target() {
        let g = FileGen::new(4);
        let basis = g.random_file(60_000);
        round_trip(&basis, &basis[..10_000], 2048);
    }

    #[test]
    fn round_trip_odd_block_sizes() {
        let g = FileGen::new(5);
        let basis = g.random_file(9_999);
        let target = g.similar_file(&basis, 2, 7);
        for bs in [1usize, 100, 700, 4096, 20_000] {
            round_trip(&basis, &target, bs);
        }
    }

    #[test]
    fn bad_block_index_rejected() {
        let basis = FileGen::new(6).random_file(4096);
        let delta = Delta {
            ops: vec![crate::delta::DeltaOp::Copy { index: 99 }],
            target_len: 2048,
            target_md5: [0; 16],
        };
        let err = apply_delta(&basis, 2048, &delta).unwrap_err();
        assert_eq!(
            err,
            PatchError::BadBlockIndex {
                index: 99,
                available: 2
            }
        );
    }

    #[test]
    fn corrupt_literal_caught_by_checksum() {
        let target = FileGen::new(7).random_file(5000);
        let sig = Signature::empty(2048);
        let mut delta = compute_delta(&sig, &target);
        if let crate::delta::DeltaOp::Literal(v) = &mut delta.ops[0] {
            v[0] ^= 0xFF;
        }
        let err = apply_delta(&[], 2048, &delta).unwrap_err();
        assert_eq!(err, PatchError::ChecksumMismatch);
    }

    #[test]
    fn length_mismatch_caught() {
        let target = FileGen::new(8).random_file(5000);
        let sig = Signature::empty(2048);
        let mut delta = compute_delta(&sig, &target);
        delta.target_len = 4999;
        let err = apply_delta(&[], 2048, &delta).unwrap_err();
        assert!(matches!(err, PatchError::LengthMismatch { .. }));
    }
}
