//! MD5 (RFC 1321), implemented from scratch.
//!
//! rsync uses MD5 as its strong block checksum (MD4 historically); we use it
//! the same way. MD5 is *not* collision-resistant and must never be used for
//! security — here it only guards against rolling-checksum false positives,
//! exactly as in rsync.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of the sines of integers: floor(2^32 * |sin(i+1)|).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

thread_local! {
    /// One-shot digest invocations on this thread (see
    /// [`Md5::digest_invocations`]).
    static DIGEST_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Streaming MD5 context.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh context.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Digest a whole message in one call.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        DIGEST_CALLS.with(|c| c.set(c.get().wrapping_add(1)));
        let mut ctx = Md5::new();
        ctx.update(data);
        ctx.finalize()
    }

    /// Whole-message digests computed on this thread so far. A strong-hash
    /// probe counter: callers that care about hashing cost (e.g. the
    /// signature matcher tests and the chunk-store bench) diff this around a
    /// region to count exactly how many `digest` calls it performed.
    pub fn digest_invocations() -> u64 {
        DIGEST_CALLS.with(|c| c.get())
    }

    /// Hex string of a whole-message digest.
    pub fn hex_digest(data: &[u8]) -> String {
        let d = Self::digest(data);
        let mut s = String::with_capacity(32);
        for b in d {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Feed bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            } else {
                // Data exhausted without filling the buffer; nothing more to
                // process and the tail code below must not clobber it.
                debug_assert!(data.is_empty());
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.process_block(&b);
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// Finish and produce the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80 then zeros until length ≡ 56 (mod 64).
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Undo the length bookkeeping the padding incurred.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.process_block(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(
                &Md5::hex_digest(input.as_bytes()),
                expected,
                "md5({input:?})"
            );
        }
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            Md5::hex_digest(b"The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Md5::digest(&data);
        for chunk_size in [1, 3, 63, 64, 65, 1000, 4096] {
            let mut ctx = Md5::new();
            for chunk in data.chunks(chunk_size) {
                ctx.update(chunk);
            }
            assert_eq!(ctx.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the 55/56/64 padding boundaries must all work.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xABu8; len];
            let d1 = Md5::digest(&data);
            let mut ctx = Md5::new();
            ctx.update(&data[..len / 2]);
            ctx.update(&data[len / 2..]);
            assert_eq!(ctx.finalize(), d1, "length {len}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Md5::digest(b"hello"), Md5::digest(b"hellp"));
        assert_ne!(Md5::digest(b""), Md5::digest(b"\0"));
    }
}
