//! Mutating sync populations: workloads where delta transfer actually pays.
//!
//! The paper's workload deletes the DTN copy before every run, so rsync
//! always degenerates to a full copy. [`SyncPopulation`] models the opposite
//! regime — a tenant's file set that *persists* and mutates round by round
//! under a seeded [`MutationMix`] (scattered edits, appends, block rewrites,
//! truncations, whole-file churn) — so per-round [`RsyncWirePlan::exact`]
//! costs exercise the real signature/delta/patch machinery.
//!
//! Everything is derived from `(seed, round, file index)` alone: the same
//! population replayed anywhere produces byte-identical files, which is what
//! lets the simulation checker compare cache-enabled and cache-bypass runs
//! for byte-identical delivery.
//!
//! [`RsyncWirePlan::exact`]: crate::wire::RsyncWirePlan::exact

use crate::filegen::FileGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-round mutation distribution, in percent. The remainder up to 100 is
/// the idle share (file untouched that round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationMix {
    /// Scattered single-byte edits.
    pub edit_pct: u8,
    /// Append new bytes at the end.
    pub append_pct: u8,
    /// Rewrite one contiguous region with fresh random bytes.
    pub rewrite_pct: u8,
    /// Truncate to a shorter length.
    pub truncate_pct: u8,
    /// Replace the whole file with new content (possibly a new length).
    pub churn_pct: u8,
}

impl MutationMix {
    /// A desktop-sync-style mix: mostly edits and appends, occasional
    /// rewrites, rare truncation/churn.
    pub fn desktop() -> Self {
        MutationMix {
            edit_pct: 35,
            append_pct: 25,
            rewrite_pct: 15,
            truncate_pct: 5,
            churn_pct: 5,
        }
    }

    /// A churn-heavy mix (log rotation, build artifacts): most mutations
    /// replace the file outright, so delta transfer rarely helps but the
    /// chunk cache still can (identical content re-uploaded by peers).
    pub fn churny() -> Self {
        MutationMix {
            edit_pct: 10,
            append_pct: 10,
            rewrite_pct: 10,
            truncate_pct: 5,
            churn_pct: 50,
        }
    }

    fn total(&self) -> u16 {
        self.edit_pct as u16
            + self.append_pct as u16
            + self.rewrite_pct as u16
            + self.truncate_pct as u16
            + self.churn_pct as u16
    }
}

/// One mutation applied to one file in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// `edits` single-byte changes at distinct positions.
    Edit {
        /// Number of distinct bytes changed.
        edits: usize,
    },
    /// Append `bytes` of fresh random data.
    Append {
        /// Bytes appended.
        bytes: usize,
    },
    /// Overwrite `[offset, offset + len)` with fresh random data.
    Rewrite {
        /// Region start.
        offset: usize,
        /// Region length.
        len: usize,
    },
    /// Truncate the file to `new_len` bytes.
    Truncate {
        /// Length after truncation.
        new_len: usize,
    },
    /// Replace the whole file with `new_len` bytes of fresh content.
    Churn {
        /// Length of the replacement.
        new_len: usize,
    },
}

/// Apply one mutation to `data`, deterministically from `seed`. Exposed so
/// property tests can drive arbitrary mutation histories through the same
/// code the population uses.
pub fn mutate(data: &[u8], kind: &MutationKind, seed: u64) -> Vec<u8> {
    match *kind {
        MutationKind::Edit { edits } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = data.to_vec();
            if !out.is_empty() {
                let want = edits.min(out.len());
                let mut touched = std::collections::HashSet::with_capacity(want);
                while touched.len() < want {
                    let idx = rng.gen_range(0..out.len());
                    if touched.insert(idx) {
                        out[idx] = out[idx].wrapping_add(rng.gen_range(1..=255));
                    }
                }
            }
            out
        }
        MutationKind::Append { bytes } => {
            let mut out = data.to_vec();
            out.extend_from_slice(&FileGen::new(seed ^ 0xa99e_4d00).random_file(bytes));
            out
        }
        MutationKind::Rewrite { offset, len } => {
            let mut out = data.to_vec();
            if !out.is_empty() {
                let offset = offset.min(out.len() - 1);
                let len = len.min(out.len() - offset);
                let patch = FileGen::new(seed ^ 0x7e77_12e0).random_file(len);
                out[offset..offset + len].copy_from_slice(&patch);
            }
            out
        }
        MutationKind::Truncate { new_len } => data[..new_len.min(data.len())].to_vec(),
        MutationKind::Churn { new_len } => FileGen::new(seed ^ 0xc402_0000).random_file(new_len),
    }
}

/// Record of one file's change in one round: the pre-mutation content (the
/// receiver's basis) plus what happened. The post-mutation content lives in
/// the population.
#[derive(Debug, Clone)]
pub struct FileChange {
    /// Index of the mutated file.
    pub file: usize,
    /// What was done to it.
    pub kind: MutationKind,
    /// The file's bytes *before* this round's mutation.
    pub basis: Vec<u8>,
}

/// Shape of a [`SyncPopulation`].
#[derive(Debug, Clone, Copy)]
pub struct SyncPopulationConfig {
    /// Number of files in the set.
    pub files: usize,
    /// Initial length of each file, bytes.
    pub file_len: usize,
    /// Per-round mutation distribution.
    pub mix: MutationMix,
    /// Upper bound on single-byte edits per Edit mutation.
    pub max_edits: usize,
    /// Upper bound on appended bytes per Append mutation.
    pub max_append: usize,
    /// Upper bound on a Rewrite region length.
    pub max_rewrite: usize,
}

impl Default for SyncPopulationConfig {
    fn default() -> Self {
        SyncPopulationConfig {
            files: 8,
            file_len: 64 * 1024,
            mix: MutationMix::desktop(),
            max_edits: 32,
            max_append: 8 * 1024,
            max_rewrite: 16 * 1024,
        }
    }
}

/// A seeded, deterministically mutating file set for one tenant.
#[derive(Debug, Clone)]
pub struct SyncPopulation {
    seed: u64,
    cfg: SyncPopulationConfig,
    round: u32,
    files: Vec<Vec<u8>>,
}

impl SyncPopulation {
    /// Build round-0 content: `cfg.files` files of `cfg.file_len` random
    /// bytes each, all derived from `seed`.
    pub fn new(seed: u64, cfg: SyncPopulationConfig) -> Self {
        assert!(
            cfg.mix.total() <= 100,
            "mutation mix sums to {} > 100",
            cfg.mix.total()
        );
        let files = (0..cfg.files)
            .map(|i| FileGen::new(mix64(seed, 0, i as u64)).random_file(cfg.file_len))
            .collect();
        SyncPopulation {
            seed,
            cfg,
            round: 0,
            files,
        }
    }

    /// Rounds advanced so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the population holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Current content of file `i`.
    pub fn file(&self, i: usize) -> &[u8] {
        &self.files[i]
    }

    /// Total bytes across the current file set.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.len() as u64).sum()
    }

    /// Advance one round: every file independently draws from the mutation
    /// mix. Returns the changes (mutated files only, in index order), each
    /// carrying the pre-mutation basis so callers can compute exact rsync
    /// wire plans for the round.
    pub fn advance(&mut self) -> Vec<FileChange> {
        self.round += 1;
        let mut changes = Vec::new();
        for i in 0..self.files.len() {
            let draw_seed = mix64(self.seed, self.round as u64, i as u64);
            let mut rng = SmallRng::seed_from_u64(draw_seed);
            let Some(kind) = self.draw(&mut rng, self.files[i].len()) else {
                continue;
            };
            let basis = std::mem::take(&mut self.files[i]);
            self.files[i] = mutate(&basis, &kind, draw_seed ^ 0x5eed_5eed);
            changes.push(FileChange {
                file: i,
                kind,
                basis,
            });
        }
        changes
    }

    /// Draw a mutation from the mix, sized for a `len`-byte file. `None`
    /// means idle.
    fn draw(&self, rng: &mut SmallRng, len: usize) -> Option<MutationKind> {
        let mix = self.cfg.mix;
        let roll = rng.gen_range(0..100u16);
        let mut bound = mix.edit_pct as u16;
        if roll < bound {
            return Some(MutationKind::Edit {
                edits: rng.gen_range(1..=self.cfg.max_edits.max(1)),
            });
        }
        bound += mix.append_pct as u16;
        if roll < bound {
            return Some(MutationKind::Append {
                bytes: rng.gen_range(1..=self.cfg.max_append.max(1)),
            });
        }
        bound += mix.rewrite_pct as u16;
        if roll < bound {
            let max = self.cfg.max_rewrite.max(1);
            return Some(MutationKind::Rewrite {
                offset: if len > 0 { rng.gen_range(0..len) } else { 0 },
                len: rng.gen_range(1..=max),
            });
        }
        bound += mix.truncate_pct as u16;
        if roll < bound {
            return Some(MutationKind::Truncate {
                new_len: if len > 0 { rng.gen_range(0..len) } else { 0 },
            });
        }
        bound += mix.churn_pct as u16;
        if roll < bound {
            let lo = (self.cfg.file_len / 2).max(1);
            let hi = self.cfg.file_len.max(lo) * 2;
            return Some(MutationKind::Churn {
                new_len: rng.gen_range(lo..=hi),
            });
        }
        None
    }
}

/// SplitMix-style 3-input mixer: decorrelates (seed, round, file) tuples.
fn mix64(seed: u64, round: u64, file: u64) -> u64 {
    let mut z = seed
        .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(file.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::apply_delta;
    use crate::signature::Signature;
    use crate::wire::RsyncWirePlan;
    use crate::{compute_delta, DEFAULT_BLOCK_SIZE};

    fn small_cfg() -> SyncPopulationConfig {
        SyncPopulationConfig {
            files: 4,
            file_len: 8 * 1024,
            max_edits: 8,
            max_append: 1024,
            max_rewrite: 2048,
            ..SyncPopulationConfig::default()
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = SyncPopulation::new(42, small_cfg());
        let mut b = SyncPopulation::new(42, small_cfg());
        for _ in 0..5 {
            let ca = a.advance();
            let cb = b.advance();
            assert_eq!(ca.len(), cb.len());
            for (x, y) in ca.iter().zip(&cb) {
                assert_eq!(x.file, y.file);
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.basis, y.basis);
            }
        }
        for i in 0..a.len() {
            assert_eq!(a.file(i), b.file(i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SyncPopulation::new(1, small_cfg());
        let mut b = SyncPopulation::new(2, small_cfg());
        a.advance();
        b.advance();
        assert_ne!(a.file(0), b.file(0));
    }

    #[test]
    fn changes_round_trip_through_rsync() {
        let mut pop = SyncPopulation::new(7, small_cfg());
        let mut mutated = 0usize;
        for _ in 0..6 {
            for c in pop.advance() {
                mutated += 1;
                let target = pop.file(c.file);
                let sig = Signature::compute(&c.basis, DEFAULT_BLOCK_SIZE);
                let delta = compute_delta(&sig, target);
                let rebuilt = apply_delta(&c.basis, DEFAULT_BLOCK_SIZE, &delta).expect("patches");
                assert_eq!(rebuilt, target);
            }
        }
        assert!(mutated > 0, "mix should mutate something in 6 rounds");
    }

    #[test]
    fn edits_pay_on_the_wire() {
        // An Edit mutation must produce a delta far below a fresh upload.
        let cfg = SyncPopulationConfig {
            mix: MutationMix {
                edit_pct: 100,
                append_pct: 0,
                rewrite_pct: 0,
                truncate_pct: 0,
                churn_pct: 0,
            },
            files: 1,
            file_len: 64 * 1024,
            max_edits: 4,
            ..SyncPopulationConfig::default()
        };
        let mut pop = SyncPopulation::new(3, cfg);
        let changes = pop.advance();
        assert_eq!(changes.len(), 1);
        let c = &changes[0];
        let exact = RsyncWirePlan::exact(&c.basis, pop.file(0), DEFAULT_BLOCK_SIZE);
        let fresh = RsyncWirePlan::fresh(pop.file(0).len() as u64);
        assert!(
            exact.forward_bytes() * 4 < fresh.forward_bytes(),
            "delta {} vs fresh {}",
            exact.forward_bytes(),
            fresh.forward_bytes()
        );
    }

    #[test]
    fn mutate_is_pure() {
        let data = FileGen::new(5).random_file(4096);
        let kind = MutationKind::Rewrite {
            offset: 100,
            len: 512,
        };
        assert_eq!(mutate(&data, &kind, 9), mutate(&data, &kind, 9));
        assert_ne!(mutate(&data, &kind, 9), mutate(&data, &kind, 10));
    }

    #[test]
    fn mutate_edge_cases() {
        assert_eq!(mutate(&[], &MutationKind::Edit { edits: 5 }, 1), vec![]);
        assert_eq!(
            mutate(&[], &MutationKind::Rewrite { offset: 0, len: 9 }, 1),
            vec![]
        );
        assert_eq!(
            mutate(b"abc", &MutationKind::Truncate { new_len: 99 }, 1),
            b"abc".to_vec()
        );
        assert_eq!(
            mutate(b"abc", &MutationKind::Truncate { new_len: 0 }, 1),
            vec![]
        );
        let appended = mutate(&[], &MutationKind::Append { bytes: 16 }, 1);
        assert_eq!(appended.len(), 16);
    }

    #[test]
    #[should_panic(expected = "mutation mix")]
    fn overfull_mix_rejected() {
        let cfg = SyncPopulationConfig {
            mix: MutationMix {
                edit_pct: 50,
                append_pct: 50,
                rewrite_pct: 50,
                truncate_pct: 0,
                churn_pct: 0,
            },
            ..SyncPopulationConfig::default()
        };
        SyncPopulation::new(1, cfg);
    }
}
