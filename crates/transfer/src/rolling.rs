//! rsync's 32-bit rolling checksum.
//!
//! For a window `X_k..=X_l`:
//!
//! ```text
//! a(k,l) = (Σ X_i) mod 2^16
//! b(k,l) = (Σ (l - i + 1) · X_i) mod 2^16
//! s(k,l) = a + 2^16 · b
//! ```
//!
//! The point of the design is the O(1) slide:
//! `a(k+1,l+1) = a(k,l) - X_k + X_{l+1}` and
//! `b(k+1,l+1) = b(k,l) - (l-k+1)·X_k + a(k+1,l+1)`,
//! which lets the delta generator scan a target file byte-by-byte at full
//! speed looking for blocks that already exist on the receiver.

/// Rolling checksum state over a window of fixed length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollingChecksum {
    a: u32,
    b: u32,
    len: usize,
}

impl RollingChecksum {
    /// Compute the checksum of an initial window.
    pub fn from_window(window: &[u8]) -> Self {
        let mut a: u32 = 0;
        let mut b: u32 = 0;
        let l = window.len();
        for (i, &x) in window.iter().enumerate() {
            a = a.wrapping_add(x as u32);
            b = b.wrapping_add(((l - i) as u32).wrapping_mul(x as u32));
        }
        RollingChecksum {
            a: a & 0xffff,
            b: b & 0xffff,
            len: l,
        }
    }

    /// The 32-bit checksum value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.a | (self.b << 16)
    }

    /// Window length this state describes.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// Slide the window one byte: drop `out`, append `inc`.
    #[inline]
    pub fn roll(&mut self, out: u8, inc: u8) {
        self.a = self.a.wrapping_sub(out as u32).wrapping_add(inc as u32) & 0xffff;
        self.b = self
            .b
            .wrapping_sub((self.len as u32).wrapping_mul(out as u32))
            .wrapping_add(self.a)
            & 0xffff;
    }
}

/// One-shot checksum of a block.
pub fn checksum(block: &[u8]) -> u32 {
    RollingChecksum::from_window(block).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolled_equals_recomputed() {
        // Slide across a buffer and compare against from-scratch computation
        // at every position: the defining property of the rolling checksum.
        let data: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let w = 64;
        let mut rc = RollingChecksum::from_window(&data[..w]);
        for k in 1..=(data.len() - w) {
            rc.roll(data[k - 1], data[k + w - 1]);
            let fresh = RollingChecksum::from_window(&data[k..k + w]);
            assert_eq!(rc.value(), fresh.value(), "mismatch at offset {k}");
        }
    }

    #[test]
    fn empty_window() {
        let rc = RollingChecksum::from_window(&[]);
        assert_eq!(rc.value(), 0);
        assert_eq!(rc.window_len(), 0);
    }

    #[test]
    fn single_byte() {
        let rc = RollingChecksum::from_window(&[7]);
        assert_eq!(rc.value(), 7 | (7 << 16));
    }

    #[test]
    fn distinct_blocks_usually_differ() {
        let a = checksum(b"the quick brown fox jumps over");
        let b = checksum(b"the quick brown fox jumped over");
        assert_ne!(a, b);
        // Permutation sensitivity comes from the b-term.
        let c = checksum(b"ab");
        let d = checksum(b"ba");
        assert_ne!(c, d);
    }

    #[test]
    fn deterministic() {
        let block = b"some block content";
        assert_eq!(checksum(block), checksum(block));
    }

    #[test]
    fn wraparound_safe() {
        // All-0xff windows exercise the mod-2^16 wrapping paths.
        let data = vec![0xffu8; 300];
        let w = 128;
        let mut rc = RollingChecksum::from_window(&data[..w]);
        for k in 1..=(data.len() - w) {
            rc.roll(data[k - 1], data[k + w - 1]);
        }
        let fresh = RollingChecksum::from_window(&data[data.len() - w..]);
        assert_eq!(rc.value(), fresh.value());
    }
}
