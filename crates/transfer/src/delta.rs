//! Delta computation: the sender's half of rsync.
//!
//! Given the receiver's [`Signature`] and the new file, slide a
//! block-sized window over the file. Wherever the rolling checksum (and
//! then the strong checksum) matches a basis block, emit a [`DeltaOp::Copy`]
//! and jump the window past it; bytes that never match accumulate into
//! [`DeltaOp::Literal`] runs.

use crate::rolling::RollingChecksum;
use crate::signature::Signature;

/// One instruction in a delta script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy basis block `index` (receiver already has these bytes).
    Copy {
        /// Basis block index.
        index: u32,
    },
    /// Raw bytes the receiver does not have.
    Literal(Vec<u8>),
}

/// A delta script that reconstructs a target file from a basis file.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Instructions in order.
    pub ops: Vec<DeltaOp>,
    /// Length of the target file (sanity check at patch time).
    pub target_len: u64,
    /// Whole-file strong checksum of the target (verified after patching).
    pub target_md5: [u8; 16],
}

impl Delta {
    /// Total literal payload carried by this delta.
    pub fn literal_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal(v) => v.len() as u64,
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Number of copy instructions.
    pub fn copy_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::Copy { .. }))
            .count()
    }

    /// Bytes this delta occupies on the wire: literals cost their length
    /// plus a 5-byte op header; copies cost 5 bytes; plus a 40-byte trailer
    /// (length + MD5 + framing).
    pub fn wire_bytes(&self) -> u64 {
        let ops: u64 = self
            .ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal(v) => 5 + v.len() as u64,
                DeltaOp::Copy { .. } => 5,
            })
            .sum();
        ops + 40
    }
}

/// Compute the delta from `basis` (described by `sig`) to `target`.
pub fn compute_delta(sig: &Signature, target: &[u8]) -> Delta {
    let bs = sig.block_size;
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut literal: Vec<u8> = Vec::new();
    let mut pos = 0usize;

    let flush = |literal: &mut Vec<u8>, ops: &mut Vec<DeltaOp>| {
        if !literal.is_empty() {
            ops.push(DeltaOp::Literal(std::mem::take(literal)));
        }
    };

    if sig.block_count() > 0 {
        let mut rc: Option<RollingChecksum> = None;
        while pos + bs <= target.len() {
            let window = &target[pos..pos + bs];
            let checksum = match rc {
                Some(ref r) => r.value(),
                None => {
                    let r = RollingChecksum::from_window(window);
                    let v = r.value();
                    rc = Some(r);
                    v
                }
            };
            if let Some(idx) = sig.find_match(checksum, window) {
                flush(&mut literal, &mut ops);
                ops.push(DeltaOp::Copy { index: idx });
                pos += bs;
                rc = None; // window recomputed at the new position
            } else {
                literal.push(target[pos]);
                if pos + bs < target.len() {
                    rc.as_mut()
                        .expect("rolling state exists while sliding")
                        .roll(target[pos], target[pos + bs]);
                } else {
                    rc = None;
                }
                pos += 1;
            }
        }
        // Tail shorter than one block: try to match the basis's short final
        // block exactly, otherwise emit literally.
        let tail = &target[pos..];
        if !tail.is_empty() {
            let tail_match = sig
                .blocks
                .last()
                .filter(|b| (b.len as usize) == tail.len() && (b.len as usize) < bs)
                .filter(|b| {
                    b.rolling == crate::rolling::checksum(tail)
                        && b.strong == crate::md5::Md5::digest(tail)
                })
                .map(|b| b.index);
            match tail_match {
                Some(idx) => {
                    flush(&mut literal, &mut ops);
                    ops.push(DeltaOp::Copy { index: idx });
                }
                None => literal.extend_from_slice(tail),
            }
            pos = target.len();
        }
    } else {
        // Empty basis: everything is literal (the paper's benchmark case).
        literal.extend_from_slice(target);
        pos = target.len();
    }
    debug_assert_eq!(pos, target.len());
    flush(&mut literal, &mut ops);

    Delta {
        ops,
        target_len: target.len() as u64,
        target_md5: crate::md5::Md5::digest(target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filegen::FileGen;
    use crate::signature::Signature;

    #[test]
    fn identical_files_are_all_copies() {
        let data = FileGen::new(1).random_file(10 * 2048);
        let sig = Signature::compute(&data, 2048);
        let delta = compute_delta(&sig, &data);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(delta.copy_count(), 10);
    }

    #[test]
    fn empty_basis_is_all_literal() {
        let data = FileGen::new(2).random_file(5000);
        let sig = Signature::empty(2048);
        let delta = compute_delta(&sig, &data);
        assert_eq!(delta.literal_bytes(), 5000);
        assert_eq!(delta.copy_count(), 0);
        // Wire cost ~ file size + small framing: rsync gains nothing, as the
        // paper states for its deleted-before-each-run workload.
        assert!(delta.wire_bytes() < 5000 + 64);
    }

    #[test]
    fn small_edit_transfers_little() {
        let g = FileGen::new(3);
        let basis = g.random_file(100 * 2048);
        let target = g.similar_file(&basis, 3, 0);
        let sig = Signature::compute(&basis, 2048);
        let delta = compute_delta(&sig, &target);
        // 3 single-byte edits dirty at most 3 blocks: ≤ 3 * 2048 literals.
        assert!(
            delta.literal_bytes() <= 3 * 2048,
            "literals {}",
            delta.literal_bytes()
        );
        assert!(delta.copy_count() >= 97);
    }

    #[test]
    fn appended_tail_is_literal() {
        let g = FileGen::new(4);
        let basis = g.random_file(10 * 2048);
        let target = g.similar_file(&basis, 0, 777);
        let sig = Signature::compute(&basis, 2048);
        let delta = compute_delta(&sig, &target);
        assert_eq!(delta.copy_count(), 10);
        assert_eq!(delta.literal_bytes(), 777);
    }

    #[test]
    fn short_final_block_matches() {
        let g = FileGen::new(5);
        let basis = g.random_file(2048 + 500); // one full + one short block
        let sig = Signature::compute(&basis, 2048);
        let delta = compute_delta(&sig, &basis);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(delta.copy_count(), 2);
    }

    #[test]
    fn prefix_insertion_realigned() {
        // Insert bytes at the front; rolling matching must re-find every
        // original block at shifted offsets.
        let g = FileGen::new(6);
        let basis = g.random_file(20 * 2048);
        let mut target = vec![0xEE; 100];
        target.extend_from_slice(&basis);
        let sig = Signature::compute(&basis, 2048);
        let delta = compute_delta(&sig, &target);
        assert_eq!(delta.literal_bytes(), 100);
        assert_eq!(delta.copy_count(), 20);
    }

    #[test]
    fn empty_target() {
        let basis = FileGen::new(7).random_file(4096);
        let sig = Signature::compute(&basis, 2048);
        let delta = compute_delta(&sig, &[]);
        assert!(delta.ops.is_empty());
        assert_eq!(delta.target_len, 0);
    }
}
