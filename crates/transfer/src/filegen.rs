//! Deterministic test-file generation.
//!
//! The paper creates its workloads with `dd` from a random source so that
//! the payload is incompressible and rsync's delta encoding cannot shortcut
//! the transfer. [`FileGen`] reproduces that: seeded, deterministic, and
//! fast (a 64-bit xorshift-multiply stream, ~GB/s in release builds).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random-file generator.
#[derive(Debug, Clone)]
pub struct FileGen {
    seed: u64,
}

impl FileGen {
    /// A generator with the given seed. The same seed always produces the
    /// same bytes (across runs and platforms).
    pub fn new(seed: u64) -> Self {
        FileGen { seed }
    }

    /// Generate `len` bytes of incompressible data.
    pub fn random_file(&self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut state = self.seed | 1;
        let mut i = 0;
        while i + 8 <= len {
            state = splitmix64(&mut state);
            out[i..i + 8].copy_from_slice(&state.to_le_bytes());
            i += 8;
        }
        if i < len {
            state = splitmix64(&mut state);
            let tail = state.to_le_bytes();
            out[i..].copy_from_slice(&tail[..len - i]);
        }
        out
    }

    /// Produce a mutated copy of `basis`: `edits` random single-byte changes
    /// at *distinct* positions plus an optional appended tail. Used to
    /// exercise rsync's delta path (which the paper's workload deliberately
    /// avoids). Sampling without replacement means exactly
    /// `min(edits, basis.len())` bytes differ — re-editing an index would
    /// silently revert the earlier change (adding 1..=255 twice can wrap
    /// back to the original byte).
    pub fn similar_file(&self, basis: &[u8], edits: usize, append: usize) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5eed_f00d);
        let mut out = basis.to_vec();
        if !out.is_empty() {
            let want = edits.min(out.len());
            let mut touched = std::collections::HashSet::with_capacity(want);
            while touched.len() < want {
                let idx = rng.gen_range(0..out.len());
                if touched.insert(idx) {
                    out[idx] = out[idx].wrapping_add(rng.gen_range(1..=255));
                }
            }
        }
        if append > 0 {
            let tail = FileGen::new(self.seed ^ 0xdead_beef).random_file(append);
            out.extend_from_slice(&tail);
        }
        out
    }

    /// Shannon-style compressibility probe: the fraction of distinct bytes
    /// in a sample. Random data stays close to 1.0 (256/256 eventually);
    /// used by tests to assert incompressibility.
    pub fn distinct_byte_fraction(data: &[u8]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut seen = [false; 256];
        for &b in data {
            seen[b as usize] = true;
        }
        seen.iter().filter(|&&s| s).count() as f64 / 256.0
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = FileGen::new(42);
        assert_eq!(g.random_file(1000), g.random_file(1000));
        assert_ne!(
            FileGen::new(1).random_file(100),
            FileGen::new(2).random_file(100)
        );
    }

    #[test]
    fn arbitrary_lengths() {
        let g = FileGen::new(7);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1023] {
            assert_eq!(g.random_file(len).len(), len);
        }
    }

    #[test]
    fn prefix_stability() {
        // Longer files share the prefix of shorter ones (same stream).
        let g = FileGen::new(11);
        let a = g.random_file(64);
        let b = g.random_file(128);
        assert_eq!(&a[..], &b[..64]);
    }

    #[test]
    fn incompressible() {
        let g = FileGen::new(3);
        let data = g.random_file(64 * 1024);
        assert!(FileGen::distinct_byte_fraction(&data) > 0.99);
    }

    #[test]
    fn similar_file_edits_and_appends() {
        let g = FileGen::new(5);
        let basis = g.random_file(10_000);
        let sim = g.similar_file(&basis, 10, 500);
        assert_eq!(sim.len(), 10_500);
        let changed = basis.iter().zip(&sim).filter(|(a, b)| a != b).count();
        // Distinct-index sampling plus a nonzero additive delta per edit:
        // the edit count is exact, not an upper bound.
        assert_eq!(changed, 10, "changed {changed}");
    }

    #[test]
    fn similar_file_edit_count_exact_across_seeds() {
        for seed in 0..32u64 {
            let g = FileGen::new(seed);
            let basis = g.random_file(256);
            let sim = g.similar_file(&basis, 40, 0);
            let changed = basis.iter().zip(&sim).filter(|(a, b)| a != b).count();
            assert_eq!(changed, 40, "seed {seed}");
        }
    }

    #[test]
    fn similar_file_edits_clamped_to_len() {
        let g = FileGen::new(9);
        let basis = g.random_file(8);
        let sim = g.similar_file(&basis, 100, 0);
        let changed = basis.iter().zip(&sim).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 8, "every byte edited exactly once");
    }

    #[test]
    fn similar_file_empty_basis() {
        let g = FileGen::new(5);
        let sim = g.similar_file(&[], 10, 32);
        assert_eq!(sim.len(), 32);
    }
}
