//! Wire-cost models: how many bytes actually cross the network.
//!
//! The WAN simulator moves *byte counts*, not buffers, so the transfer layer
//! must say exactly how many bytes each protocol phase puts on the wire.
//! Two plans exist:
//!
//! * [`RsyncWirePlan`] — the rsync exchange the paper uses between the user
//!   machine and the DTN: handshake, receiver→sender signature,
//!   sender→receiver delta, final ack.
//! * [`StreamWirePlan`] — a plain streaming copy (scp/HTTP PUT style),
//!   provided as the baseline alternative the paper mentions ("rsync ... can
//!   be replaced with a different file-transfer tool").

use crate::delta::compute_delta;
use crate::signature::Signature;

/// rsync protocol constants (framing approximations).
const HANDSHAKE_BYTES: u64 = 512;
const ACK_BYTES: u64 = 128;

/// Byte costs of one rsync transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsyncWirePlan {
    /// Sender→receiver session setup (version exchange, file list).
    pub handshake_bytes: u64,
    /// Receiver→sender block signatures of the basis file.
    pub signature_bytes: u64,
    /// Sender→receiver delta script (literals dominate for fresh files).
    pub delta_bytes: u64,
    /// Receiver→sender final acknowledgement.
    pub ack_bytes: u64,
}

impl RsyncWirePlan {
    /// Exact plan for a concrete (basis, target) pair: runs the real
    /// signature + delta algorithms and counts bytes.
    pub fn exact(basis: &[u8], target: &[u8], block_size: usize) -> Self {
        let sig = Signature::compute(basis, block_size);
        let delta = compute_delta(&sig, target);
        RsyncWirePlan {
            handshake_bytes: HANDSHAKE_BYTES,
            signature_bytes: sig.wire_bytes(),
            delta_bytes: delta.wire_bytes(),
            ack_bytes: ACK_BYTES,
        }
    }

    /// Closed-form plan for the paper's workload: the DTN's copy was deleted
    /// before the run, so the basis is empty and the delta is one literal of
    /// the full file (or no ops at all when the target is itself empty — an
    /// empty delta is just the 40-byte trailer, with no literal framing).
    pub fn fresh(target_len: u64) -> Self {
        let delta_bytes = if target_len == 0 {
            40
        } else {
            target_len + 5 + 40
        };
        RsyncWirePlan {
            handshake_bytes: HANDSHAKE_BYTES,
            signature_bytes: 32, // empty signature header
            delta_bytes,
            ack_bytes: ACK_BYTES,
        }
    }

    /// Total bytes sent from the sender to the receiver.
    pub fn forward_bytes(&self) -> u64 {
        self.handshake_bytes + self.delta_bytes
    }

    /// Total bytes sent from the receiver back to the sender.
    pub fn reverse_bytes(&self) -> u64 {
        self.signature_bytes + self.ack_bytes
    }

    /// Grand total.
    pub fn total_bytes(&self) -> u64 {
        self.forward_bytes() + self.reverse_bytes()
    }
}

/// Byte costs of a plain streaming transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamWirePlan {
    /// Payload plus per-chunk framing.
    pub forward_bytes: u64,
    /// Acknowledgement traffic.
    pub reverse_bytes: u64,
}

impl StreamWirePlan {
    /// Plan for streaming `len` bytes in `chunk` -byte frames with 64 bytes
    /// of framing per chunk.
    pub fn new(len: u64, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        let chunks = len.div_ceil(chunk);
        StreamWirePlan {
            forward_bytes: len + chunks * 64 + 256,
            reverse_bytes: 128,
        }
    }

    /// Grand total.
    pub fn total_bytes(&self) -> u64 {
        self.forward_bytes + self.reverse_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filegen::FileGen;

    #[test]
    fn fresh_plan_matches_exact_on_empty_basis() {
        // Sweep sizes including 0: an empty target yields an op-free delta
        // (40 trailer bytes, no literal framing) and the closed form must
        // agree with the real algorithm everywhere.
        for len in [0usize, 1, 7, 2048, 2049, 100_000] {
            let target = FileGen::new(1).random_file(len);
            let exact = RsyncWirePlan::exact(&[], &target, 2048);
            let fresh = RsyncWirePlan::fresh(len as u64);
            assert_eq!(
                exact, fresh,
                "closed form diverged from the real algorithm at len {len}"
            );
        }
    }

    #[test]
    fn fresh_transfer_overhead_is_tiny() {
        // The paper's claim: rsync to an empty DTN moves ~the file size.
        let plan = RsyncWirePlan::fresh(100_000_000);
        let overhead = plan.total_bytes() - 100_000_000;
        assert!(overhead < 2048, "overhead {overhead}");
    }

    #[test]
    fn similar_file_saves_wire_bytes() {
        let g = FileGen::new(2);
        let basis = g.random_file(200_000);
        let target = g.similar_file(&basis, 5, 0);
        let with_basis = RsyncWirePlan::exact(&basis, &target, 2048);
        let without = RsyncWirePlan::fresh(target.len() as u64);
        assert!(
            with_basis.total_bytes() < without.total_bytes() / 4,
            "delta transfer not cheaper: {} vs {}",
            with_basis.total_bytes(),
            without.total_bytes()
        );
    }

    #[test]
    fn signature_traffic_flows_backwards() {
        let g = FileGen::new(3);
        let basis = g.random_file(500_000);
        let plan = RsyncWirePlan::exact(&basis, &basis, 2048);
        assert!(
            plan.reverse_bytes() > 5000,
            "signatures should be substantial"
        );
        assert!(
            plan.forward_bytes() < 10_000,
            "identical file needs almost no delta"
        );
    }

    #[test]
    fn stream_plan_accounting() {
        let p = StreamWirePlan::new(1_000_000, 65_536);
        assert!(p.forward_bytes > 1_000_000);
        assert!(p.forward_bytes < 1_010_000);
        assert_eq!(p.total_bytes(), p.forward_bytes + 128);
    }

    #[test]
    #[should_panic(expected = "chunk")]
    fn zero_chunk_panics() {
        StreamWirePlan::new(10, 0);
    }
}
