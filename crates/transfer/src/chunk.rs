//! Content-addressed chunk manifests.
//!
//! A [`ChunkManifest`] names a file's content as a sequence of fixed-size
//! chunks, each identified by its strong (MD5) hash. Relays keep a
//! content-addressed store of chunks they have already seen — from *any*
//! user — and a sender that presents a manifest only ships the chunks the
//! relay is missing. This is the cross-user deduplication layer the sync
//! scenario class measures: rsync's delta encoding saves bytes *within* one
//! (basis, target) pair, the chunk store saves bytes *across* tenants and
//! rounds.

use crate::md5::Md5;

/// Default chunk size for relay-side deduplication. Coarser than the rsync
/// block size (2 KiB): dedup chunks are store keys, not delta granules, and
/// a bigger unit keeps manifest overhead (20 B/chunk on the wire) small.
pub const DEFAULT_CHUNK_SIZE: usize = 8 * 1024;

/// Per-chunk wire overhead: 16-byte hash + 4-byte length.
pub const CHUNK_REF_WIRE_BYTES: u64 = 20;

/// Per-shipped-chunk framing overhead on top of the payload.
pub const CHUNK_FRAME_WIRE_BYTES: u64 = 4;

/// Manifest header wire cost.
pub const MANIFEST_HEADER_WIRE_BYTES: u64 = 16;

/// One chunk reference: strong hash plus length (the final chunk of a file
/// may be short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkRef {
    /// MD5 of the chunk's content.
    pub hash: [u8; 16],
    /// Chunk length in bytes.
    pub len: u32,
}

/// A file's content as an ordered list of chunk references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkManifest {
    /// Chunking unit (every chunk but the last has exactly this length).
    pub chunk_size: usize,
    /// Ordered chunk references.
    pub chunks: Vec<ChunkRef>,
}

impl ChunkManifest {
    /// Chunk `data` and hash every chunk.
    pub fn of(data: &[u8], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunks = data
            .chunks(chunk_size)
            .map(|c| ChunkRef {
                hash: Md5::digest(c),
                len: c.len() as u32,
            })
            .collect();
        ChunkManifest { chunk_size, chunks }
    }

    /// Total content length the manifest describes.
    pub fn total_len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len as u64).sum()
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Wire bytes to *describe* the content (header + one ref per chunk),
    /// before any chunk payloads are shipped.
    pub fn wire_bytes(&self) -> u64 {
        MANIFEST_HEADER_WIRE_BYTES + self.chunks.len() as u64 * CHUNK_REF_WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filegen::FileGen;

    #[test]
    fn chunking_covers_content() {
        let data = FileGen::new(1).random_file(20_000);
        let m = ChunkManifest::of(&data, 8192);
        assert_eq!(m.chunk_count(), 3);
        assert_eq!(m.chunks[0].len, 8192);
        assert_eq!(m.chunks[2].len, 20_000 - 16_384);
        assert_eq!(m.total_len(), 20_000);
    }

    #[test]
    fn identical_chunks_share_hashes() {
        let block = FileGen::new(2).random_file(8192);
        let mut data = block.clone();
        data.extend_from_slice(&block);
        let m = ChunkManifest::of(&data, 8192);
        assert_eq!(m.chunks[0], m.chunks[1]);
    }

    #[test]
    fn hash_matches_content_digest() {
        let data = FileGen::new(3).random_file(10_000);
        let m = ChunkManifest::of(&data, 4096);
        assert_eq!(m.chunks[0].hash, Md5::digest(&data[..4096]));
        assert_eq!(m.chunks[2].hash, Md5::digest(&data[8192..]));
    }

    #[test]
    fn empty_file_empty_manifest() {
        let m = ChunkManifest::of(&[], 4096);
        assert_eq!(m.chunk_count(), 0);
        assert_eq!(m.total_len(), 0);
        assert_eq!(m.wire_bytes(), MANIFEST_HEADER_WIRE_BYTES);
    }

    #[test]
    fn wire_bytes_accounting() {
        let data = FileGen::new(4).random_file(3 * 4096);
        let m = ChunkManifest::of(&data, 4096);
        assert_eq!(m.wire_bytes(), 16 + 3 * 20);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_size_panics() {
        ChunkManifest::of(b"x", 0);
    }
}
