//! `detour` — command-line front end to the routing-detours library.
//!
//! ```text
//! detour simulate   --client ubc --provider gdrive --size 100 [--route ualberta] [--runs 7] [--seed 1]
//! detour best-route --client purdue --provider gdrive --size 60 [--rule overlap|mean]
//! detour traceroute --client ubc --provider gdrive
//! detour probe      --client ubc
//! detour tiv        --client ubc --provider gdrive
//! detour trace      --client ubc --provider gdrive --size 100 [--route ualberta] [--seed 1]
//!                   [--format tree|jsonl|chrome|metrics] [--out FILE]
//! detour trace      --from FILE          # summarize a recorded JSONL trace
//! detour health     --client ubc --provider gdrive --size 100 [--route ualberta] [--runs 3]
//!                   [--seed 1] [--record FILE] [--slo-p99-secs N] [--format table|json] [--out FILE]
//! detour health     --trace FILE [--slo-p99-secs N] [--format table|json] [--out FILE]
//! detour analyze    (same inputs as health) [--top N]
//! detour check      [--cases 64] [--seed 7] [--class std|chaos|sync] [--threads N] [--replay FILE]
//!                   [--out FILE]
//! detour plane      [--lookups N] [--clients N] [--threads N] [--seed N] [--tenants N]
//!                   [--churn-every N] [--trip-every N]
//! detour sync       [--tenants N] [--files N] [--rounds N] [--size-kb N] [--cache-mb N]
//!                   [--seed N] [--out FILE]
//! ```
//!
//! `health` renders the SLO scoreboard (per vantage/provider/size-class
//! attempts, error and latency verdicts, burn rates); `analyze` renders
//! critical paths, retry waterfalls, breaker timelines and slowest spans.
//! Both read either a live campaign (replayed deterministically from
//! `--seed`) or a recorded JSONL trace; `--record` saves the live campaign
//! so the two inputs are byte-identical.
//!
//! Clients: `ubc`, `purdue`, `ucla`. Providers: `gdrive`, `dropbox`,
//! `onedrive`. Routes: `direct`, `ualberta`, `umich`.

use routing_detours::cloudstore::{ProviderKind, UploadOptions};
use routing_detours::detour_core::{run_job, DecisionRule, Route};
use routing_detours::measure::RunProtocol;
use routing_detours::netsim::trace::Traceroute;
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::{Client, NorthAmerica};

fn usage() -> ! {
    eprintln!(
        "usage:\n  detour simulate   --client <ubc|purdue|ucla> --provider <gdrive|dropbox|onedrive> \
         --size <MB> [--route <direct|ualberta|umich>] [--runs N] [--seed N]\n  detour best-route \
         --client <c> --provider <p> --size <MB> [--rule <overlap|mean>]\n  detour traceroute \
         --client <c> --provider <p>\n  detour probe      --client <c>\n  detour trace      \
         --client <c> --provider <p> --size <MB> [--route <r>] [--seed N] \
         [--format <tree|jsonl|chrome|metrics>] [--out FILE]\n  detour trace      \
         --from FILE\n  detour health     --client <c> --provider <p> --size <MB> [--route <r>] \
         [--runs N] [--seed N] [--record FILE] [--slo-p99-secs N] [--format <table|json>] \
         [--out FILE]\n  detour health     --trace FILE [--slo-p99-secs N] [--format <table|json>] \
         [--out FILE]\n  detour analyze    (same inputs as health) [--top N]\n  detour check      \
         [--cases N] [--seed N] [--class <std|chaos|sync>] [--threads N] [--replay FILE] [--out FILE]\n  \
         detour plane      [--lookups N] [--clients N] [--threads N] [--seed N] [--tenants N] \
         [--churn-every N] [--trip-every N]\n  \
         detour sync       [--tenants N] [--files N] [--rounds N] [--size-kb N] [--cache-mb N] \
         [--seed N] [--out FILE]\n\
         \nDETOUR_THREADS sets the default worker count for sharded check executions."
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Self {
        let mut argv = std::env::args().skip(1);
        let cmd = argv.next().unwrap_or_else(|| usage());
        let mut flags = std::collections::HashMap::new();
        let rest: Vec<String> = argv.collect();
        let mut i = 0;
        while i < rest.len() {
            let k = rest[i].trim_start_matches("--").to_string();
            if !rest[i].starts_with("--") || i + 1 >= rest.len() {
                usage();
            }
            flags.insert(k, rest[i + 1].clone());
            i += 2;
        }
        Args { cmd, flags }
    }

    fn client(&self) -> Client {
        match self.flags.get("client").map(String::as_str) {
            Some("ubc") => Client::Ubc,
            Some("purdue") => Client::Purdue,
            Some("ucla") => Client::Ucla,
            _ => usage(),
        }
    }

    fn provider(&self) -> ProviderKind {
        match self.flags.get("provider").map(String::as_str) {
            Some("gdrive") | Some("google") => ProviderKind::GoogleDrive,
            Some("dropbox") => ProviderKind::Dropbox,
            Some("onedrive") => ProviderKind::OneDrive,
            _ => usage(),
        }
    }

    fn size_bytes(&self) -> u64 {
        self.flags
            .get("size")
            .and_then(|s| s.parse::<u64>().ok())
            .map(|mb| mb * MB)
            .unwrap_or_else(|| usage())
    }

    fn u64_flag(&self, name: &str, default: u64) -> u64 {
        self.flags
            .get(name)
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default)
    }
}

fn route_by_name(world: &NorthAmerica, name: &str) -> Route {
    match name {
        "direct" => Route::Direct,
        "ualberta" => Route::via(world.hop_ualberta()),
        "umich" => Route::via(world.hop_umich()),
        _ => usage(),
    }
}

fn main() {
    let args = Args::parse();
    let world = NorthAmerica::new();
    match args.cmd.as_str() {
        "simulate" => simulate(&args, &world),
        "best-route" => best_route(&args, &world),
        "traceroute" => traceroute(&args, &world),
        "probe" => probe(&args, &world),
        "tiv" => tiv(&args, &world),
        "trace" => trace(&args, &world),
        "health" => health(&args, &world),
        "analyze" => analyze(&args, &world),
        "check" => check(&args),
        "plane" => plane(&args),
        "sync" => sync_study(&args, &world),
        _ => usage(),
    }
}

/// Obtain the trace both report commands work from: a recorded JSONL file
/// when `--trace FILE` is given (typed errors with remediation hints on
/// missing/truncated files), otherwise a live campaign — `--runs`
/// deterministic uploads whose telemetry segments are concatenated exactly
/// as `--record` would write them, so live and recorded scoreboards are
/// computed from identical bytes.
fn report_input(args: &Args, world: &NorthAmerica) -> routing_detours::obs::Trace {
    use routing_detours::obs;
    if let Some(path) = args.flags.get("trace") {
        return obs::load_trace(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
    }
    let client = world.client(args.client());
    let provider = world.provider(args.provider());
    let size = args.size_bytes();
    let runs = args.u64_flag("runs", 3) as usize;
    let seed = args.u64_flag("seed", 1);
    let route_name = args
        .flags
        .get("route")
        .cloned()
        .unwrap_or_else(|| "direct".into());
    let route = route_by_name(world, &route_name);
    let mut jsonl = String::new();
    for r in 0..runs {
        let mut sim = world.build_sim(seed + r as u64);
        sim.enable_telemetry();
        // Failures still record job.error events — exactly what the
        // scoreboard is for — so errors are folded in, not fatal.
        let _ = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            size,
            &route,
            UploadOptions::warm(client.class),
        );
        let rec = sim.take_telemetry().expect("telemetry was enabled");
        jsonl.push_str(&routing_detours::obs::jsonl_log(&rec));
    }
    if let Some(path) = args.flags.get("record") {
        std::fs::write(path, &jsonl).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("recorded {path} ({} bytes)", jsonl.len());
    }
    obs::parse_jsonl(&jsonl, "<live>").expect("live recordings always parse")
}

fn write_or_print(args: &Args, rendered: &str) {
    match args.flags.get("out") {
        Some(path) => {
            std::fs::write(path, rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path} ({} bytes)", rendered.len());
        }
        None => print!("{rendered}"),
    }
}

/// Route-health scoreboard: per (vantage, provider, size-class) attempts,
/// quantiles, retry/failover pressure and multi-window SLO burn rates.
fn health(args: &Args, world: &NorthAmerica) {
    use routing_detours::obs;
    let trace = report_input(args, world);
    let mut slo = obs::SloPolicy::default();
    if let Some(secs) = args.flags.get("slo-p99-secs") {
        let secs: u64 = secs.parse().unwrap_or_else(|_| usage());
        slo.p99_ns = secs.saturating_mul(1_000_000_000);
    }
    let mut board = obs::HealthBoard::new(slo);
    board.ingest(&trace);
    let report = board.report();
    let rendered = match args.flags.get("format").map(String::as_str) {
        None | Some("table") => report.to_text(),
        Some("json") => report.to_json(),
        _ => usage(),
    };
    write_or_print(args, &rendered);
}

/// Trace analytics: per-session critical paths, retry waterfalls, breaker
/// timelines and the top-k slowest spans.
fn analyze(args: &Args, world: &NorthAmerica) {
    use routing_detours::obs;
    let trace = report_input(args, world);
    let top = args.u64_flag("top", 10) as usize;
    let report = obs::analyze(&trace, top);
    let rendered = match args.flags.get("format").map(String::as_str) {
        None | Some("table") => report.to_text(),
        Some("json") => report.to_json(),
        _ => usage(),
    };
    write_or_print(args, &rendered);
}

/// Deterministic simulation checking: run randomized scenarios through the
/// engine under invariant oracles (byte conservation, link capacity,
/// max-min fairness, clock monotonicity, same-seed determinism). Prints a
/// machine-readable JSON verdict on stdout, a human summary on stderr, and
/// exits nonzero if any invariant fired. `--replay FILE` re-executes a
/// scenario spec saved from an earlier failure instead of generating cases.
fn check(args: &Args) {
    use routing_detours::simcheck;
    let report = match args.flags.get("replay") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            simcheck::replay(&text, None).unwrap_or_else(|e| {
                eprintln!("bad scenario spec in {path}: {e}");
                std::process::exit(1);
            })
        }
        None => simcheck::run_check(simcheck::CheckConfig {
            cases: args.u64_flag("cases", 64) as u32,
            seed: args.u64_flag("seed", 7),
            class: match args.flags.get("class").map(String::as_str) {
                None | Some("std") => simcheck::ScenarioClass::Standard,
                Some("chaos") => simcheck::ScenarioClass::Chaos,
                Some("sync") => simcheck::ScenarioClass::Sync,
                _ => usage(),
            },
            // Extra sharded-executor worker count on top of the standard
            // 1/2/4 set: --threads flag, else DETOUR_THREADS, else the
            // host's parallelism (netsim::shard::resolve_threads).
            threads: match args.flags.get("threads") {
                Some(s) => {
                    let n: usize = s.parse().unwrap_or_else(|_| usage());
                    routing_detours::netsim::shard::resolve_threads(Some(n)) as u32
                }
                None if std::env::var("DETOUR_THREADS").is_ok() => {
                    routing_detours::netsim::shard::resolve_threads(None) as u32
                }
                None => 0,
            },
            ..simcheck::CheckConfig::default()
        }),
    };
    let verdict = report.to_json();
    match args.flags.get("out") {
        Some(path) => {
            std::fs::write(path, &verdict).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path} ({} bytes)", verdict.len());
        }
        None => println!("{verdict}"),
    }
    eprintln!(
        "simcheck: {} passed, {} failed, {} events audited",
        report.passed,
        report.failures.len(),
        report.events
    );
    for f in &report.failures {
        eprintln!(
            "  case {} (seed {}): {} violation(s), shrunk in {} step(s); first: {}",
            f.case_index,
            f.case_seed,
            f.violations.len(),
            f.shrink_steps,
            f.violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
        eprintln!(
            "  reproduce with: detour check --replay <(echo '{}')",
            f.shrunk.to_json()
        );
    }
    if !report.ok() {
        std::process::exit(1);
    }
}

/// Drive the route-intelligence plane with a zipf-skewed client fleet:
/// millions of simulated clients asking "which route now?", with monitor
/// churn invalidating generations and breaker trips demoting detours.
/// Prints the one-line fleet report (QPS, hit/stale/demote/shed counts,
/// staleness quantiles, determinism digest) plus the churn-sweep staleness
/// bound the run is held to.
fn plane(args: &Args) {
    use routing_detours::routeplane::{run_fleet, FleetConfig, PlaneConfig};
    let plane_cfg = PlaneConfig {
        tenants: args.u64_flag("tenants", PlaneConfig::default().tenants as u64) as u32,
        ..PlaneConfig::default()
    };
    let cfg = FleetConfig {
        clients: args.u64_flag("clients", 1_000_000),
        lookups: args.u64_flag("lookups", 2_000_000),
        threads: args.u64_flag("threads", 1).max(1) as usize,
        seed: args.u64_flag("seed", 7),
        churn_every: args.u64_flag("churn-every", 10_000),
        trip_every: args.u64_flag("trip-every", 50_000),
        plane: plane_cfg,
        ..FleetConfig::default()
    };
    let report = run_fleet(&cfg);
    println!("{}", report.to_line());
    match cfg.churn_period_ns() {
        Some(bound) => {
            let max = report.staleness.max().unwrap_or(0);
            println!(
                "staleness max {max} ns within the {bound} ns churn-sweep bound: {}",
                if max <= bound { "ok" } else { "VIOLATED" }
            );
            if max > bound {
                std::process::exit(1);
            }
        }
        None => println!("churn disabled: staleness unbounded by construction"),
    }
}

/// The delta-sync study on the calibrated map: tenants replicating one
/// mutating dataset to Google Drive, timed over three arms per round —
/// direct full upload, the paper's store-and-forward detour, and a
/// delta-sync detour through a shared chunk store at the UAlberta DTN.
/// Prints the per-cell table plus byte savings, cache hit rate and win/loss
/// flips versus plain store-and-forward.
fn sync_study(args: &Args, world: &NorthAmerica) {
    use routing_detours::scenarios::{run_sync_study, SyncStudyConfig};
    let d = SyncStudyConfig::default();
    let cfg = SyncStudyConfig {
        tenants: args.u64_flag("tenants", d.tenants as u64) as u32,
        files: args.u64_flag("files", d.files as u64) as u32,
        rounds: args.u64_flag("rounds", d.rounds as u64) as u32,
        file_kb: args.u64_flag("size-kb", d.file_kb as u64) as u32,
        cache_mb: args.u64_flag("cache-mb", d.cache_mb as u64) as u32,
        seed: args.u64_flag("seed", d.seed),
    };
    let report = run_sync_study(world, cfg);
    write_or_print(args, &report.render());
}

/// Run one upload with telemetry enabled and export the recording: a span
/// tree for humans, JSONL or Chrome trace-event JSON (Perfetto) for tools,
/// or the metrics snapshot as a table.
fn trace(args: &Args, world: &NorthAmerica) {
    use routing_detours::obs;
    if let Some(path) = args.flags.get("from") {
        // Summarize an existing recording instead of running a simulation.
        // Broken files get the trace loader's typed, line-numbered error.
        let t = obs::load_trace(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        let unclosed = t.spans.iter().filter(|s| s.end_ns.is_none()).count();
        println!(
            "{path}: {} span(s) ({unclosed} unclosed), {} event(s), {:.2} s of sim time",
            t.spans.len(),
            t.events.len(),
            t.end_ns() as f64 / 1e9
        );
        return;
    }
    let client = world.client(args.client());
    let provider = world.provider(args.provider());
    let size = args.size_bytes();
    let seed = args.u64_flag("seed", 1);
    let route_name = args
        .flags
        .get("route")
        .cloned()
        .unwrap_or_else(|| "direct".into());
    let route = route_by_name(world, &route_name);

    let mut sim = world.build_sim(seed);
    sim.enable_telemetry();
    let report = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        size,
        &route,
        UploadOptions::warm(client.class),
    )
    .unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    });
    let rec = sim.take_telemetry().expect("telemetry was enabled");

    let format = args
        .flags
        .get("format")
        .map(String::as_str)
        .unwrap_or("tree");
    let rendered = match format {
        "tree" => format!(
            "{} -> {} ({}), {} MB, seed {}: {:.2} s\n\n{}\n{}",
            client.name,
            provider.kind.display_name(),
            route.label(),
            size / MB,
            seed,
            report.secs(),
            obs::span_tree_text(&rec),
            routing_detours::measure::metrics_table(&rec.metrics.snapshot(), "metrics").render()
        ),
        "jsonl" => obs::jsonl_log(&rec),
        "chrome" => obs::chrome_trace_json(&rec),
        "metrics" => {
            routing_detours::measure::metrics_table(&rec.metrics.snapshot(), "metrics").render()
        }
        _ => usage(),
    };
    match args.flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path} ({} bytes)", rendered.len());
        }
        None => print!("{rendered}"),
    }
}

/// Report bandwidth triangle-inequality violations for a client/provider
/// pair over the standard DTN candidates.
fn tiv(args: &Args, world: &NorthAmerica) {
    let client = world.client(args.client());
    let provider = world.provider(args.provider());
    let mut sim = world.build_sim(args.u64_flag("seed", 1));
    let frontend = provider.frontend_for(sim.core().topology(), client.node);
    let n = *world.nodes();
    let candidates = [
        (
            n.ualberta,
            routing_detours::netsim::flow::FlowClass::Research,
        ),
        (n.umich, routing_detours::netsim::flow::FlowClass::PlanetLab),
    ];
    let tivs = routing_detours::detour_core::find_bandwidth_tivs(
        sim.core(),
        client.node,
        client.class,
        frontend,
        &candidates,
    )
    .unwrap_or_else(|e| {
        eprintln!("tiv scan failed: {e}");
        std::process::exit(1);
    });
    if tivs.is_empty() {
        println!(
            "no bandwidth TIV: no candidate detour can beat the direct path from {} to {}",
            client.name,
            provider.kind.display_name()
        );
        return;
    }
    println!(
        "bandwidth triangle-inequality violations, {} -> {}:",
        client.name,
        provider.kind.display_name()
    );
    let mut name_of = |id| sim.core().topology().node(id).name.clone();
    for t in tivs {
        println!(
            "  via {:<24} direct {} vs detour {} ({:.2}x)",
            name_of(t.via),
            t.direct,
            t.detour,
            t.ratio()
        );
    }
}

fn simulate(args: &Args, world: &NorthAmerica) {
    let client = world.client(args.client());
    let provider = world.provider(args.provider());
    let size = args.size_bytes();
    let runs = args.u64_flag("runs", 1) as usize;
    let seed = args.u64_flag("seed", 1);
    let route_name = args
        .flags
        .get("route")
        .cloned()
        .unwrap_or_else(|| "direct".into());
    let route = route_by_name(world, &route_name);

    let mut secs = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut sim = world.build_sim(seed + r as u64);
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            size,
            &route,
            UploadOptions::warm(client.class),
        )
        .unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        });
        secs.push(report.secs());
    }
    let stats = routing_detours::measure::Stats::from_samples(&secs);
    println!(
        "{} -> {} ({}), {} MB, {}: {:.2} s ± {:.2} over {} run(s)",
        client.name,
        provider.kind.display_name(),
        route.label(),
        size / MB,
        if runs > 1 { "mean" } else { "time" },
        stats.mean,
        stats.std_dev,
        runs
    );
}

fn best_route(args: &Args, world: &NorthAmerica) {
    let client = world.client(args.client());
    let provider = world.provider(args.provider());
    let size = args.size_bytes();
    let rule = match args.flags.get("rule").map(String::as_str) {
        Some("mean") => DecisionRule::MeanOnly,
        _ => DecisionRule::OverlapAware,
    };
    let routes = vec![
        Route::Direct,
        Route::via(world.hop_ualberta()),
        Route::via(world.hop_umich()),
    ];
    let oracle = routing_detours::detour_core::OracleSelector {
        protocol: RunProtocol::paper(),
    };
    let (choice, stats) = oracle
        .choose(world, &client, &provider, &routes, size, "cli", 0)
        .unwrap_or_else(|e| {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        });
    println!(
        "measured ({} MB to {}):",
        size / MB,
        provider.kind.display_name()
    );
    for (route, s) in routes.iter().zip(&stats) {
        println!("  {:<14} {:.2} s ± {:.2}", route.label(), s.mean, s.std_dev);
    }
    let best_detour = (1..routes.len())
        .min_by(|&a, &b| stats[a].mean.partial_cmp(&stats[b].mean).expect("finite"))
        .expect("detours present");
    let decision = if rule.prefer_detour(&stats[0], &stats[best_detour]) {
        routes[best_detour].label()
    } else if choice.route_idx == 0 {
        "Direct".to_string()
    } else {
        // Mean says detour but the rule refused (overlapping error bars).
        format!(
            "Direct (detour {} overlaps; rule = overlap-aware)",
            routes[best_detour].label()
        )
    };
    println!("decision: {decision}");
}

fn traceroute(args: &Args, world: &NorthAmerica) {
    let client = world.client(args.client());
    let provider = world.provider(args.provider());
    let mut sim = world.build_sim(args.u64_flag("seed", 5));
    let frontend = provider.frontend_for(sim.core().topology(), client.node);
    let tr = Traceroute::run(sim.core(), client.node, frontend).unwrap_or_else(|e| {
        eprintln!("traceroute failed: {e}");
        std::process::exit(1);
    });
    print!("{tr}");
}

fn probe(args: &Args, world: &NorthAmerica) {
    let client = world.client(args.client());
    let mut sim = world.build_sim(args.u64_flag("seed", 1));
    println!("idle-path rate estimates from {}:", client.name);
    let n = *world.nodes();
    let targets: [(&str, routing_detours::netsim::topology::NodeId); 5] = [
        ("Google Drive POP", n.google_pop),
        ("Dropbox POP", n.dropbox_pop),
        ("OneDrive POP", n.onedrive_pop),
        ("UAlberta DTN", n.ualberta),
        ("UMich DTN", n.umich),
    ];
    for (label, node) in targets {
        match sim.core().bottleneck(client.node, node, client.class) {
            Ok(b) => println!("  {label:<18} {b}"),
            Err(e) => println!("  {label:<18} unreachable ({e})"),
        }
    }
}
