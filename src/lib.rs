//! # routing-detours
//!
//! A from-scratch Rust reproduction of *"Mitigating Routing Inefficiencies
//! to Cloud-Storage Providers: A Case Study"* (Sinha, Niu, Wang, Lu; 2016),
//! built as a workspace of reusable crates:
//!
//! | crate | what it is |
//! |---|---|
//! | [`netsim`] | flow-level discrete-event WAN simulator (topology, policy routing, max-min fair flows, policers, background traffic, traceroute) |
//! | [`obs`] | telemetry: sim-time spans and events, metrics registry, Perfetto/JSONL trace exporters |
//! | [`transfer`] | the rsync algorithm (MD5, rolling checksum, signatures, delta, patch) and wire-cost models |
//! | [`cloudstore`] | Google Drive / Dropbox / OneDrive API models (OAuth2, chunked upload sessions, fault injection) |
//! | [`relay`] | store-and-forward and pipelined DTN relaying |
//! | [`measure`] | the 7-run/keep-5 protocol, statistics, overlap analysis, tables |
//! | [`detour_core`] | routes, measurement campaigns, automatic detour selection, route monitoring, path diagnosis |
//! | [`scenarios`] | the calibrated North-America world and one constructor per paper artifact |
//! | [`routeplane`] | the route-intelligence plane: sharded scored-route cache, generation invalidation, admission control, fleet driver |
//! | [`simcheck`] | deterministic simulation checking: randomized scenarios, invariant oracles, shrinking, seed replay |
//!
//! Start with `examples/quickstart.rs`; regenerate the paper with
//! `cargo run --release -p bench --bin repro -- --all`.

pub use cloudstore;
pub use detour_core;
pub use measure;
pub use netsim;
pub use obs;
pub use relay;
pub use routeplane;
pub use scenarios;
pub use simcheck;
pub use transfer;

/// Workspace version, for programmatic checks.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
