//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its test suites actually use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, numeric
//! range strategies, `Just`, `any`, and the `prop::{collection, option,
//! sample}` modules. Cases are generated from a deterministic per-case seed
//! so failures reproduce exactly; there is **no shrinking** — a failing
//! case panics with the assertion message directly.

pub mod rng {
    /// The generator handed to strategies; one fresh stream per test case.
    pub type PropRng = rand::rngs::SmallRng;
}

pub mod strategy {
    use crate::rng::PropRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut PropRng) -> Self::Value;

        /// Transform every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a dependent strategy from every generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut PropRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut PropRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut PropRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut PropRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut PropRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut PropRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut PropRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draw a uniformly random value of the type.
        fn arbitrary(rng: &mut PropRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut PropRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut PropRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Size argument for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut crate::rng::PropRng) -> usize {
        use rand::Rng;
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use crate::rng::PropRng;
    use crate::strategy::Strategy;
    use crate::SizeRange;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut PropRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a cardinality drawn from
    /// `size`. The element domain must be large enough to reach the lower
    /// bound; generation retries duplicates a bounded number of times.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut PropRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 + target * 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    use crate::rng::PropRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`, yielding `Some` three times in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut PropRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use crate::rng::PropRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut PropRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    use crate::rng::PropRng;
    use rand::SeedableRng;

    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives one property through its configured cases, each with a
    /// deterministic per-case generator stream.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run the property once per case. Failures panic immediately with
        /// the case index in the message (no shrinking).
        pub fn run<F: FnMut(&mut PropRng)>(&mut self, mut case: F) {
            for idx in 0..self.config.cases {
                let seed = 0x7072_6f70_7465_7374u64 ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15);
                let mut rng = PropRng::seed_from_u64(seed);
                case(&mut rng);
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Alias matching upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_runs() {
        use crate::rng::PropRng;
        use crate::strategy::Strategy;
        let strat = prop::collection::vec(0u64..100, 2..5);
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        let mut first: Vec<Vec<u64>> = Vec::new();
        runner.run(|rng: &mut PropRng| first.push(strat.generate(rng)));
        let mut second: Vec<Vec<u64>> = Vec::new();
        let mut runner2 = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        runner2.run(|rng: &mut PropRng| second.push(strat.generate(rng)));
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Ranges, tuples, maps, and collections compose.
        #[test]
        fn combinators_compose(
            (base, extras) in (1u64..=10).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..100, 1..4))
            }),
            choice in prop::sample::select(vec![2usize, 4, 8]),
            flag in prop::option::of(0.0f64..1.0),
            byte in any::<u8>(),
        ) {
            prop_assert!((1..=10).contains(&base));
            prop_assert!(!extras.is_empty() && extras.len() < 4);
            prop_assert!([2, 4, 8].contains(&choice));
            if let Some(f) = flag {
                prop_assert!((0.0..1.0).contains(&f), "flag {} out of range", f);
            }
            let widened = byte as u64;
            prop_assert_eq!(widened & 0xff, widened);
        }
    }
}
