//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::SmallRng`] (here a
//! xoshiro256++ generator seeded via splitmix64), the [`Rng`] extension
//! trait with `gen`, `gen_range`, and `gen_bool`, and [`SeedableRng`].
//! Streams are deterministic per seed and stable across platforms, which is
//! all the simulator requires; no claim of statistical equivalence with
//! upstream `rand` is made.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can produce values from a generator.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The `rng.gen()` distribution: uniform over the type's natural domain
/// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f32 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every core
/// generator exactly as upstream `rand` does.
pub trait Rng: RngCore {
    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ with splitmix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u8..=255);
            assert!(y >= 1);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(0.96f64..=1.04);
            assert!((0.96..=1.04).contains(&g));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&frac), "got {frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
