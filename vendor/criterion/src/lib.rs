//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion` with
//! `sample_size`/`measurement_time`/`warm_up_time`, benchmark groups with
//! throughput annotation, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is real wall-clock sampling —
//! warm-up, then `sample_size` timed batches — reported as median
//! ns-per-iteration with min/max spread (no HTML reports, no statistical
//! regression analysis).
//!
//! Under `--test` (as passed by `cargo test --benches`) every closure runs
//! exactly once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(None, id.into(), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(
        &mut self,
        group: Option<&str>,
        id: BenchmarkId,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let label = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        if self.test_mode {
            println!("{label}: ok (test mode, 1 iteration)");
            return;
        }
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            println!("{label}: no samples (b.iter was never called)");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let rate = throughput
            .map(|t| match t {
                Throughput::Bytes(n) => {
                    format!("  {}/s", format_scaled(n as f64 / (median * 1e-9), "B"))
                }
                Throughput::Elements(n) => {
                    format!("  {}/s", format_scaled(n as f64 / (median * 1e-9), "elem"))
                }
            })
            .unwrap_or_default();
        println!(
            "{label:<48} time: [{} {} {}]{rate}",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = self.name.clone();
        let throughput = self.throughput;
        self.criterion
            .run_one(Some(&name), id.into(), throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = self.name.clone();
        let throughput = self.throughput;
        self.criterion
            .run_one(Some(&name), id.into(), throughput, |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure a routine: warm up, then record `sample_size` timed batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, and estimate the per-iteration cost while at it.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns).round() as u64).clamp(1, 10_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Median nanoseconds per iteration from the last [`Bencher::iter`]
    /// call, when sampling ran (never in `--test` mode). This is an
    /// extension over upstream criterion used by benches that derive
    /// ratios between measurements (e.g. instrumentation overhead).
    pub fn last_median_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        Some(s[s.len() / 2])
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_scaled(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.test_mode = false;
        let mut observed = None;
        c.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
            observed = b.last_median_ns();
        });
        assert!(observed.expect("samples collected") > 0.0);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = true;
        let mut g = c.benchmark_group("shape");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("with-input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| black_box(9)));
        g.finish();
    }
}
