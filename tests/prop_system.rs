//! Cross-crate property tests: system-level invariants of the full stack.

use proptest::prelude::*;
use routing_detours::cloudstore::{ProviderKind, UploadOptions};
use routing_detours::detour_core::{run_job, JobDetail, Route};
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::{Client, NorthAmerica};

fn world() -> &'static NorthAmerica {
    // The scenario is immutable; build it once for all property cases.
    use std::sync::OnceLock;
    static WORLD: OnceLock<NorthAmerica> = OnceLock::new();
    WORLD.get_or_init(NorthAmerica::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Direct upload time strictly increases with file size on a fixed
    /// seed (same congestion realization).
    #[test]
    fn upload_time_monotone_in_size(mb in 1u64..=60, extra in 1u64..=40, seed in 0u64..50) {
        let w = world();
        let client = w.client(Client::Ubc);
        let provider = w.provider(ProviderKind::GoogleDrive);
        let run = |size| {
            let mut sim = w.build_sim(seed);
            run_job(
                &mut sim,
                client.node,
                client.class,
                &provider,
                size,
                &Route::Direct,
                UploadOptions::warm(client.class),
            )
            .unwrap()
            .elapsed
        };
        prop_assert!(run((mb + extra) * MB) > run(mb * MB));
    }

    /// A store-and-forward detour can never beat the best single leg: the
    /// total is bounded below by each leg alone.
    #[test]
    fn detour_total_bounded_by_legs(mb in 5u64..=60, seed in 0u64..20) {
        let w = world();
        let client = w.client(Client::Ubc);
        let provider = w.provider(ProviderKind::GoogleDrive);
        let mut sim = w.build_sim(seed);
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            mb * MB,
            &Route::via(w.hop_ualberta()),
            UploadOptions::warm(routing_detours::netsim::flow::FlowClass::Research),
        )
        .unwrap();
        match report.detail {
            JobDetail::Detour(ref r) => {
                prop_assert!(report.elapsed >= r.leg_times[0]);
                prop_assert!(report.elapsed >= r.upload.elapsed);
                prop_assert_eq!(report.elapsed, r.leg_times[0] + r.upload.elapsed);
            }
            _ => prop_assert!(false, "expected detour detail"),
        }
    }

    /// Cold (fresh-token) uploads are never faster than warm uploads of the
    /// same size on the same seed.
    #[test]
    fn cold_start_never_faster(mb in 1u64..=30, seed in 0u64..20) {
        let w = world();
        let client = w.client(Client::Ucla);
        let provider = w.provider(ProviderKind::Dropbox);
        let time = |opts| {
            let mut sim = w.build_sim(seed);
            run_job(&mut sim, client.node, client.class, &provider, mb * MB, &Route::Direct, opts)
                .unwrap()
                .elapsed
        };
        let warm = time(UploadOptions::warm(client.class));
        let cold = time(UploadOptions::cold(client.class));
        prop_assert!(cold >= warm, "cold {} < warm {}", cold, warm);
    }

    /// The goodput reported by any upload never exceeds the scenario's
    /// physical access-link rate for that client.
    #[test]
    fn goodput_respects_physics(
        mb in 5u64..=60,
        seed in 0u64..20,
        client_pick in 0usize..3,
    ) {
        let w = world();
        let client = w.client(Client::all()[client_pick]);
        let provider = w.provider(ProviderKind::GoogleDrive);
        let mut sim = w.build_sim(seed);
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            mb * MB,
            &Route::Direct,
            UploadOptions::warm(client.class),
        )
        .unwrap();
        let access_mbps = match Client::all()[client_pick] {
            Client::Ubc => 43.0,
            Client::Purdue => 4.6,
            Client::Ucla => 2.3,
        };
        let goodput = report.bytes as f64 * 8.0 / report.elapsed.as_secs_f64() / 1e6;
        // The scenario applies ±4% per-run capacity jitter; allow for it.
        prop_assert!(
            goodput <= access_mbps * 1.045,
            "goodput {} > access {} (+jitter)", goodput, access_mbps
        );
    }
}
