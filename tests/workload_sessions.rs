//! Integration tests for sync-session workloads and small-file batching
//! through the top-level facade.

use routing_detours::cloudstore::{
    plan_batches, upload_batched, BatchItem, BatchPolicy, ProviderKind,
};
use routing_detours::netsim::units::{KB, MB};
use routing_detours::scenarios::{run_session, Client, NorthAmerica, SessionPolicy, SyncWorkload};

#[test]
fn session_total_is_sum_of_positive_uploads() {
    let world = NorthAmerica::new();
    let w = SyncWorkload::personal_cloud(9, 6);
    let r = run_session(
        &world,
        Client::Ubc,
        ProviderKind::Dropbox,
        &w,
        SessionPolicy::AlwaysDirect,
        2,
    );
    assert_eq!(r.choices.len(), 6);
    assert!(r.total_secs > 0.0);
}

#[test]
fn detour_session_wins_only_where_the_paper_says() {
    let world = NorthAmerica::new();
    let w = SyncWorkload::personal_cloud(3, 10);
    // Purdue→Drive: detour session wins.
    let direct = run_session(
        &world,
        Client::Purdue,
        ProviderKind::GoogleDrive,
        &w,
        SessionPolicy::AlwaysDirect,
        4,
    );
    let detour = run_session(
        &world,
        Client::Purdue,
        ProviderKind::GoogleDrive,
        &w,
        SessionPolicy::FixedRoute(1),
        4,
    );
    assert!(detour.total_secs < direct.total_secs);
    // UBC→Dropbox: direct session wins (detours only add overhead).
    let direct = run_session(
        &world,
        Client::Ubc,
        ProviderKind::Dropbox,
        &w,
        SessionPolicy::AlwaysDirect,
        4,
    );
    let detour = run_session(
        &world,
        Client::Ubc,
        ProviderKind::Dropbox,
        &w,
        SessionPolicy::FixedRoute(1),
        4,
    );
    assert!(direct.total_secs < detour.total_secs);
}

#[test]
fn batching_reduces_objects_and_completes_on_the_scenario() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(ProviderKind::GoogleDrive);
    let files = vec![
        200 * KB,
        300 * KB,
        150 * KB,
        60 * MB,
        500 * KB,
        700 * KB,
        250 * KB,
        400 * KB,
    ];
    let plan = plan_batches(&files, BatchPolicy::default());
    assert!(plan.len() < files.len());
    assert!(plan.iter().any(|i| matches!(i, BatchItem::Bundle(_))));
    assert_eq!(
        plan.iter().map(|i| i.payload_bytes()).sum::<u64>(),
        files.iter().sum::<u64>()
    );
    let mut sim = world.build_sim(6);
    let report = upload_batched(&mut sim, client.node, &provider, &plan, client.class).unwrap();
    assert_eq!(report.objects, plan.len() as u64);
    assert!(report.wire_bytes >= report.payload_bytes);
    assert!(report.elapsed.as_secs_f64() > 0.0);
}

#[test]
fn workloads_are_deterministic_and_policy_choices_recorded() {
    let world = NorthAmerica::new();
    let w = SyncWorkload::personal_cloud(11, 8);
    let a = run_session(
        &world,
        Client::Ucla,
        ProviderKind::OneDrive,
        &w,
        SessionPolicy::FixedRoute(2),
        7,
    );
    let b = run_session(
        &world,
        Client::Ucla,
        ProviderKind::OneDrive,
        &w,
        SessionPolicy::FixedRoute(2),
        7,
    );
    assert_eq!(a.total_secs.to_bits(), b.total_secs.to_bits());
    assert!(a.choices.iter().all(|&c| c == 2));
}
