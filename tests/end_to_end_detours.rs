//! Integration tests spanning relay + cloudstore + scenarios: detour
//! mechanics, pipelining, and the paper's arithmetic.

use routing_detours::cloudstore::{ProviderKind, UploadOptions};
use routing_detours::detour_core::{run_job, JobDetail, Route};
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::units::MB;
use routing_detours::relay::pipeline::pipelined_upload;
use routing_detours::scenarios::{Client, NorthAmerica};

#[test]
fn detour_time_is_sum_of_legs() {
    // The paper's intro arithmetic: 36 s = 19 s (rsync) + 17 s (upload).
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let drive = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(3);
    let report = run_job(
        &mut sim,
        client.node,
        client.class,
        &drive,
        100 * MB,
        &Route::via(world.hop_ualberta()),
        UploadOptions::warm(FlowClass::Research),
    )
    .expect("detour");
    match report.detail {
        JobDetail::Detour(ref r) => {
            let sum = r.leg_times[0] + r.upload.elapsed;
            assert_eq!(r.total, sum, "store-and-forward must not overlap");
            // Both legs in the paper's ballpark.
            let leg1 = r.leg_times[0].as_secs_f64();
            let leg2 = r.upload.elapsed.as_secs_f64();
            assert!((15.0..25.0).contains(&leg1), "rsync leg {leg1}");
            assert!((15.0..25.0).contains(&leg2), "upload leg {leg2}");
        }
        _ => panic!("expected detour detail"),
    }
}

#[test]
fn pipelining_beats_store_and_forward_on_winning_detour() {
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let drive = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(5);
    let sf = routing_detours::relay::detour_upload(
        &mut sim,
        vec![n.ubc, n.ualberta],
        vec![FlowClass::PlanetLab, FlowClass::Research],
        &drive,
        60 * MB,
        UploadOptions::warm(FlowClass::Research),
    )
    .unwrap();
    let mut sim = world.build_sim(5);
    let pl = pipelined_upload(
        &mut sim,
        n.ubc,
        n.ualberta,
        &drive,
        60 * MB,
        FlowClass::PlanetLab,
        FlowClass::Research,
    )
    .unwrap();
    assert!(pl.total < sf.total);
    assert!(pl.overlap_savings() > 0.0);
    // Pipelined time is bounded below by the slower leg.
    let slower_leg = sf.leg_times[0].max(sf.upload.elapsed);
    assert!(
        pl.total >= slower_leg,
        "pipelining cannot beat the bottleneck leg"
    );
}

#[test]
fn detour_through_umich_hurts_from_ubc() {
    // Fig 2's negative result: UBC→UMich is so slow the detour loses even
    // though UMich→Drive is the fastest last leg in the study.
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let drive = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(9);
    let direct = run_job(
        &mut sim,
        client.node,
        client.class,
        &drive,
        50 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .unwrap();
    let mut sim = world.build_sim(9);
    let via_umich = run_job(
        &mut sim,
        client.node,
        client.class,
        &drive,
        50 * MB,
        &Route::via(world.hop_umich()),
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .unwrap();
    assert!(via_umich.elapsed > direct.elapsed);
}

#[test]
fn downloads_work_from_every_client() {
    // Our extension: the download path, symmetric to uploads.
    let world = NorthAmerica::new();
    for client in Client::all() {
        let spec = world.client(client);
        let drive = world.provider(ProviderKind::GoogleDrive);
        let mut sim = world.build_sim(11);
        let stats = routing_detours::cloudstore::download::download(
            &mut sim,
            spec.node,
            &drive,
            10 * MB,
            UploadOptions::warm(spec.class),
        )
        .expect("download");
        assert_eq!(stats.bytes, 10 * MB);
        assert!(stats.elapsed.as_secs_f64() > 0.0);
    }
}

#[test]
fn all_three_providers_work_from_all_clients() {
    let world = NorthAmerica::new();
    for client in Client::all() {
        for kind in ProviderKind::all() {
            let spec = world.client(client);
            let provider = world.provider(kind);
            let mut sim = world.build_sim(13);
            let report = run_job(
                &mut sim,
                spec.node,
                spec.class,
                &provider,
                10 * MB,
                &Route::Direct,
                UploadOptions::warm(spec.class),
            )
            .unwrap_or_else(|e| panic!("{} -> {kind}: {e}", client.name()));
            assert_eq!(report.bytes, 10 * MB);
        }
    }
}

#[test]
fn rsync_layer_moves_essentially_the_file_size() {
    // The paper deletes DTN copies before each run: wire bytes ≈ file size.
    use routing_detours::transfer::RsyncWirePlan;
    for mb in [10u64, 60, 100] {
        let plan = RsyncWirePlan::fresh(mb * MB);
        let overhead = plan.total_bytes() as f64 / (mb * MB) as f64 - 1.0;
        assert!(overhead < 0.001, "rsync overhead {overhead} for {mb} MB");
    }
}
