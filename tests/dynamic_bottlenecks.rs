//! Integration tests for the paper's closing future-work item: "monitor and
//! bypass dynamic bottlenecks on the WAN".

use routing_detours::detour_core::monitor::{MonitorConfig, ProbeLeg, RouteMonitor};
use routing_detours::netsim::prelude::*;
use routing_detours::netsim::units::MB;

/// Two disjoint paths; the direct one degrades mid-simulation.
fn world() -> (Sim, NodeId, NodeId, NodeId, LinkId) {
    let mut b = TopologyBuilder::new();
    let user = b.host("user", GeoPoint::new(49.0, -123.0));
    let dtn = b.host("dtn", GeoPoint::new(53.5, -113.5));
    let pop = b.datacenter("pop", GeoPoint::new(37.4, -122.1));
    let (direct_link, _) = b.duplex(
        user,
        pop,
        LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(12)),
    );
    b.duplex(
        user,
        dtn,
        LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(8)),
    );
    b.duplex(
        dtn,
        pop,
        LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(14)),
    );
    (Sim::new(b.build(), 7), user, dtn, pop, direct_link)
}

#[test]
fn monitor_switches_when_bottleneck_appears() {
    let (mut sim, user, dtn, pop, direct_link) = world();
    // At t=60s the direct path collapses to 2 Mbps.
    sim.schedule_capacity_change(
        direct_link,
        SimTime::from_secs(60),
        Bandwidth::from_mbps(2.0),
    );
    let cfg = MonitorConfig {
        routes: vec![
            vec![ProbeLeg {
                src: user,
                dst: pop,
                class: FlowClass::Commodity,
            }],
            vec![
                ProbeLeg {
                    src: user,
                    dst: dtn,
                    class: FlowClass::Commodity,
                },
                ProbeLeg {
                    src: dtn,
                    dst: pop,
                    class: FlowClass::Commodity,
                },
            ],
        ],
        probe_bytes: MB,
        reference_bytes: 50 * MB,
        interval: SimTime::from_secs(30),
        epochs: 6,
        alpha: 0.7,
    };
    let v = sim.run_process(Box::new(RouteMonitor::new(cfg))).unwrap();
    let choices = RouteMonitor::decode_choices(&v);
    // Healthy direct path first (100 > 50 Mbps), detour after the collapse.
    assert_eq!(choices[0], 0, "choices {choices:?}");
    assert_eq!(
        *choices.last().unwrap(),
        1,
        "monitor never switched: {choices:?}"
    );
    // The switch is persistent once made.
    let first_switch = choices.iter().position(|&c| c == 1).unwrap();
    assert!(
        choices[first_switch..].iter().all(|&c| c == 1),
        "flapping: {choices:?}"
    );
}

#[test]
fn monitor_switches_back_when_bottleneck_clears() {
    let (mut sim, user, dtn, pop, direct_link) = world();
    sim.schedule_capacity_change(
        direct_link,
        SimTime::from_secs(30),
        Bandwidth::from_mbps(2.0),
    );
    sim.schedule_capacity_change(
        direct_link,
        SimTime::from_secs(150),
        Bandwidth::from_mbps(100.0),
    );
    let cfg = MonitorConfig {
        routes: vec![
            vec![ProbeLeg {
                src: user,
                dst: pop,
                class: FlowClass::Commodity,
            }],
            vec![
                ProbeLeg {
                    src: user,
                    dst: dtn,
                    class: FlowClass::Commodity,
                },
                ProbeLeg {
                    src: dtn,
                    dst: pop,
                    class: FlowClass::Commodity,
                },
            ],
        ],
        probe_bytes: MB,
        reference_bytes: 50 * MB,
        interval: SimTime::from_secs(30),
        epochs: 9,
        alpha: 0.8,
    };
    let v = sim.run_process(Box::new(RouteMonitor::new(cfg))).unwrap();
    let choices = RouteMonitor::decode_choices(&v);
    assert!(choices.contains(&1), "never detoured: {choices:?}");
    assert_eq!(*choices.last().unwrap(), 0, "never recovered: {choices:?}");
}

#[test]
fn transfer_spanning_a_degradation_slows_down() {
    let (mut sim, user, _, pop, direct_link) = world();
    sim.schedule_capacity_change(
        direct_link,
        SimTime::from_secs(2),
        Bandwidth::from_mbps(4.0),
    );
    let report = sim
        .run_transfer(TransferRequest::new(user, pop, 50 * MB))
        .unwrap();
    // 100 Mbps would finish 50 MB in ~4 s; after 2 s only ~25 MB have moved
    // and the rest crawls at 0.5 MB/s: expect ~50+ s.
    let s = report.elapsed.as_secs_f64();
    assert!(s > 40.0, "degradation had no effect: {s}");
}
