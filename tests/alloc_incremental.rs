//! System-level checks for the incremental allocator rewrite.
//!
//! Two concerns that only show up above the `FlowCore` unit tests:
//!
//! * **Policer resource-index stability.** Aggregate policers are
//!   allocatable resources addressed as `n_links + i`. Those indices must
//!   stay aligned with [`AuditView::resource_capacities`] across topology
//!   sizes, and matching flows must attribute to exactly the right index —
//!   an off-by-one here would silently police the wrong traffic.
//! * **Allocator-mode digest parity.** Running the same scenario with the
//!   incremental allocator and with the full-recompute reference must
//!   produce bit-identical event streams and chained state digests; the
//!   simcheck differential oracle depends on this.

use routing_detours::netsim::audit::AuditHook;
use routing_detours::netsim::engine::AuditView;
use routing_detours::netsim::prelude::*;
use routing_detours::netsim::units::MB;
use routing_detours::simcheck::{case_seed, run_once, RunOptions, ScenarioSpec};
use std::cell::RefCell;
use std::rc::Rc;

/// What the index-stability hook observed over a whole run.
#[derive(Default)]
struct IndexObservations {
    events: u64,
    /// Did any active flow carry a policer resource index (>= n_links)?
    policer_attributed: bool,
}

/// Audit hook asserting the resource table layout after every event.
struct IndexStabilityHook {
    n_policers: usize,
    policer_rates: Vec<f64>,
    obs: Rc<RefCell<IndexObservations>>,
}

impl AuditHook for IndexStabilityHook {
    fn after_event(&mut self, view: &AuditView<'_>) {
        let caps = view.resource_capacities();
        let n_links = view.n_links();
        assert_eq!(
            caps.len(),
            n_links + self.n_policers,
            "resource table must be links then aggregate policers"
        );
        for (i, want) in self.policer_rates.iter().enumerate() {
            assert_eq!(
                caps[n_links + i],
                *want,
                "policer {i} capacity drifted at index {}",
                n_links + i
            );
        }
        let mut obs = self.obs.borrow_mut();
        obs.events += 1;
        for f in view.flows() {
            if !f.active {
                continue;
            }
            for &r in f.resources {
                assert!(
                    (r as usize) < caps.len(),
                    "flow {} references resource {r} beyond the table",
                    f.id
                );
            }
            if f.resources.iter().any(|&r| r as usize >= n_links) {
                obs.policer_attributed = true;
            }
        }
    }
}

/// A line topology with `extra_hosts` additional stub hosts so the link
/// count (and therefore the policer base index) varies per call.
fn world(extra_hosts: u32) -> (Sim, NodeId, NodeId, LinkId) {
    let mut b = TopologyBuilder::new();
    let a = b.host("src", GeoPoint::new(49.0, -123.0));
    let c = b.datacenter("dst", GeoPoint::new(37.4, -122.1));
    let (link, _) = b.duplex(
        a,
        c,
        LinkParams::new(Bandwidth::from_mbps(80.0), SimTime::from_millis(10)),
    );
    for i in 0..extra_hosts {
        let h = b.host(&format!("stub{i}"), GeoPoint::new(40.0 + i as f64, -100.0));
        b.duplex(
            h,
            c,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimTime::from_millis(5)),
        );
    }
    (Sim::new(b.build(), 1), a, c, link)
}

/// Aggregate policer indices stay `n_links + i` as the topology grows, the
/// audit capacity table matches, and only matching flows attribute to them.
#[test]
fn aggregate_policer_indices_survive_topology_growth() {
    for extra_hosts in [0u32, 3, 9] {
        let (mut sim, a, c, link) = world(extra_hosts);
        let n_links = sim.core().topology().links().len();
        let rates = [Bandwidth::from_mbps(8.0), Bandwidth::from_mbps(16.0)];
        sim.add_policer(Policer::aggregate(
            "agg-planetlab",
            link,
            FlowClass::PlanetLab,
            rates[0],
        ));
        sim.add_policer(Policer::aggregate(
            "agg-commodity",
            link,
            FlowClass::Commodity,
            rates[1],
        ));
        let obs = Rc::new(RefCell::new(IndexObservations::default()));
        sim.set_audit_hook(Box::new(IndexStabilityHook {
            n_policers: 2,
            policer_rates: rates.iter().map(|r| r.bytes_per_sec()).collect(),
            obs: Rc::clone(&obs),
        }));
        let rep = sim
            .run_transfer(TransferRequest::with_class(
                a,
                c,
                10 * MB,
                FlowClass::PlanetLab,
            ))
            .unwrap();
        let obs = obs.borrow();
        assert!(obs.events > 0, "hook never fired");
        assert!(
            obs.policer_attributed,
            "policed flow never attributed to a policer resource \
             (extra_hosts = {extra_hosts}, n_links = {n_links})"
        );
        // The 8 Mbps (1 MB/s) aggregate policer, not the 80 Mbps link, must
        // bound the transfer — proof the capacity landed at the right index.
        let s = rep.elapsed.as_secs_f64();
        assert!(
            s > 9.5,
            "policed transfer took only {s}s with {extra_hosts} extra hosts"
        );
    }
}

/// An unmatched class ignores the aggregate policer entirely: no resource
/// attribution and no throughput penalty.
#[test]
fn unmatched_class_skips_policer_resource() {
    let (mut sim, a, c, link) = world(2);
    let rate = Bandwidth::from_mbps(8.0);
    sim.add_policer(Policer::aggregate(
        "agg-planetlab",
        link,
        FlowClass::PlanetLab,
        rate,
    ));
    let obs = Rc::new(RefCell::new(IndexObservations::default()));
    sim.set_audit_hook(Box::new(IndexStabilityHook {
        n_policers: 1,
        policer_rates: vec![rate.bytes_per_sec()],
        obs: Rc::clone(&obs),
    }));
    let rep = sim
        .run_transfer(TransferRequest::with_class(
            a,
            c,
            10 * MB,
            FlowClass::Research,
        ))
        .unwrap();
    assert!(
        !obs.borrow().policer_attributed,
        "Research flow attributed to a PlanetLab policer resource"
    );
    // 80 Mbps link = 10 MB/s: the 10 MB transfer finishes in about a second.
    assert!(rep.elapsed.as_secs_f64() < 2.0);
}

/// The incremental and reference allocators produce bit-identical
/// executions over randomized scenarios (same chained digest, same event
/// count, same bytes delivered).
#[test]
fn allocator_modes_are_bit_identical_end_to_end() {
    for i in 0..6 {
        let spec = ScenarioSpec::generate(case_seed(13, i));
        let inc = run_once(&spec, RunOptions::default());
        let reference = run_once(
            &spec,
            RunOptions {
                reference_allocator: true,
                ..Default::default()
            },
        );
        assert_eq!(
            inc.chain_digest, reference.chain_digest,
            "case {i}: allocator modes diverged"
        );
        assert_eq!(inc.events, reference.events, "case {i}");
        assert_eq!(inc.bytes_delivered, reference.bytes_delivered, "case {i}");
    }
}
