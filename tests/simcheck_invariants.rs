//! Deterministic simulation-checking budget for CI.
//!
//! Runs a fixed-seed batch of randomized scenarios through the engine under
//! the simcheck invariant oracles, proves same-seed re-execution is
//! bit-identical, and — via the `failpoints` feature, enabled for tests by
//! the root crate's dev-dependency — proves the oracles catch an
//! intentionally broken allocator and shrink the failure to a minimal
//! reproducer.

use routing_detours::simcheck::{
    case_seed, check_case, replay, run_check, run_once, shrink, CheckConfig, RunOptions,
    ScenarioClass, ScenarioSpec, Violation,
};

/// The CI budget: a fixed-seed batch must hold every invariant.
#[test]
fn fixed_seed_budget_is_clean() {
    let report = run_check(CheckConfig {
        cases: 24,
        seed: 7,
        rate_inflation: None,
        shrink_budget: 50,
        class: ScenarioClass::Standard,
        threads: 0,
    });
    assert!(
        report.ok(),
        "invariant violations in fixed-seed budget: {}",
        report.to_json()
    );
    assert_eq!(report.passed, 24);
}

/// The chaos class — upload sessions under throttle storms, fault bursts
/// and mid-transfer capacity faults — holds its termination oracle too.
#[test]
fn fixed_seed_chaos_budget_is_clean() {
    let report = run_check(CheckConfig {
        cases: 12,
        seed: 11,
        rate_inflation: None,
        shrink_budget: 50,
        class: ScenarioClass::Chaos,
        threads: 0,
    });
    assert!(
        report.ok(),
        "invariant violations in chaos budget: {}",
        report.to_json()
    );
    assert_eq!(report.passed, 12);
}

/// Same seed, same scenario => bit-identical execution fingerprints.
#[test]
fn same_seed_double_execution_is_bit_identical() {
    for i in 0..6 {
        let spec = ScenarioSpec::generate(case_seed(11, i));
        let a = run_once(&spec, RunOptions::default());
        let b = run_once(&spec, RunOptions::default());
        assert_eq!(
            a.chain_digest, b.chain_digest,
            "case {i} diverged across same-seed executions"
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.bytes_delivered, b.bytes_delivered);
    }
}

/// A replayed spec behaves exactly like the generated original.
#[test]
fn replay_of_serialized_spec_matches_original() {
    let spec = ScenarioSpec::generate(case_seed(7, 3));
    let direct = run_once(&spec, RunOptions::default());
    let parsed = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
    let replayed = run_once(&parsed, RunOptions::default());
    assert_eq!(direct.chain_digest, replayed.chain_digest);
    let report = replay(&spec.to_json(), None).expect("valid spec");
    assert!(report.ok());
}

/// Fault injection: inflate allocator output by 30% and the oracles must
/// notice, and the shrinker must reduce the reproducer to a handful of
/// nodes and at most two flows.
#[test]
fn injected_overallocation_is_caught_and_shrunk() {
    let opts = RunOptions {
        rate_inflation: Some(1.3),
        ..Default::default()
    };
    let spec = (0..16)
        .map(|i| ScenarioSpec::generate(case_seed(13, i)))
        .find(|s| !check_case(s, opts).ok())
        .expect("a 30% over-allocation must break some generated case");

    let res = shrink(&spec, opts, 300);
    let minimal = check_case(&res.spec, opts);
    assert!(!minimal.ok(), "shrunk spec must still fail");
    assert!(
        minimal.violations.iter().any(|v| matches!(
            v,
            Violation::OverAllocation { .. } | Violation::UnfairAllocation { .. }
        )),
        "expected an allocation violation, got {:?}",
        minimal.violations
    );
    assert!(
        res.spec.topo.node_count() <= 4,
        "reproducer not minimal: {:?}",
        res.spec.topo
    );
    assert!(
        res.spec.jobs.len() <= 2,
        "reproducer kept {} jobs",
        res.spec.jobs.len()
    );

    // The minimal reproducer survives a JSON round trip and still fails.
    let round = ScenarioSpec::from_json(&res.spec.to_json()).expect("round trip");
    assert!(!check_case(&round, opts).ok());
}
