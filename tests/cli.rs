//! Integration tests for the `detour` CLI binary.

use std::process::Command;

fn detour(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_detour"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (_, err, ok) = detour(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn simulate_direct_and_detour() {
    let (out, _, ok) = detour(&[
        "simulate",
        "--client",
        "ubc",
        "--provider",
        "gdrive",
        "--size",
        "100",
    ]);
    assert!(ok, "{out}");
    assert!(
        out.contains("UBC -> Google Drive (Direct), 100 MB"),
        "{out}"
    );
    let direct: f64 = out
        .split(": ")
        .nth(1)
        .unwrap()
        .split(" s")
        .next()
        .unwrap()
        .parse()
        .unwrap();

    let (out2, _, ok2) = detour(&[
        "simulate",
        "--client",
        "ubc",
        "--provider",
        "gdrive",
        "--size",
        "100",
        "--route",
        "ualberta",
    ]);
    assert!(ok2, "{out2}");
    let detoured: f64 = out2
        .split(": ")
        .nth(1)
        .unwrap()
        .split(" s")
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        detoured < direct,
        "detour {detoured} should beat direct {direct}"
    );
}

#[test]
fn simulate_multi_run_reports_sigma() {
    let (out, _, ok) = detour(&[
        "simulate",
        "--client",
        "purdue",
        "--provider",
        "gdrive",
        "--size",
        "30",
        "--runs",
        "3",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("over 3 run(s)"), "{out}");
    assert!(out.contains('±'), "{out}");
}

#[test]
fn best_route_picks_detour_for_ubc_gdrive() {
    let (out, _, ok) = detour(&[
        "best-route",
        "--client",
        "ubc",
        "--provider",
        "gdrive",
        "--size",
        "60",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("decision: via UAlberta"), "{out}");
}

#[test]
fn best_route_prefers_direct_from_ucla() {
    let (out, _, ok) = detour(&[
        "best-route",
        "--client",
        "ucla",
        "--provider",
        "dropbox",
        "--size",
        "30",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("decision: Direct"), "{out}");
}

#[test]
fn traceroute_shows_pacificwave_for_ubc_gdrive() {
    let (out, _, ok) = detour(&["traceroute", "--client", "ubc", "--provider", "gdrive"]);
    assert!(ok, "{out}");
    assert!(out.contains("vncv1rtr2.canarie.ca"), "{out}");
    assert!(out.contains("pacificwave"), "{out}");
}

#[test]
fn probe_lists_all_targets() {
    let (out, _, ok) = detour(&["probe", "--client", "purdue"]);
    assert!(ok, "{out}");
    for label in [
        "Google Drive POP",
        "Dropbox POP",
        "OneDrive POP",
        "UAlberta DTN",
        "UMich DTN",
    ] {
        assert!(out.contains(label), "missing {label}: {out}");
    }
    assert!(out.contains("Mbps"), "{out}");
}

#[test]
fn tiv_found_for_ubc_gdrive_but_not_ucla() {
    let (out, _, ok) = detour(&["tiv", "--client", "ubc", "--provider", "gdrive"]);
    assert!(ok, "{out}");
    assert!(out.contains("violations"), "{out}");
    assert!(out.contains("ualberta"), "{out}");

    let (out2, _, ok2) = detour(&["tiv", "--client", "ucla", "--provider", "gdrive"]);
    assert!(ok2, "{out2}");
    assert!(out2.contains("no bandwidth TIV"), "{out2}");
}

#[test]
fn check_emits_json_verdict_and_replays() {
    let (out, err, ok) = detour(&["check", "--cases", "8", "--seed", "7"]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("\"ok\":true"), "{out}");
    assert!(out.contains("\"passed\":8"), "{out}");
    assert!(err.contains("8 passed, 0 failed"), "{err}");

    // Save a generated scenario spec and replay it from a file.
    let spec = routing_detours::simcheck::ScenarioSpec::generate(
        routing_detours::simcheck::case_seed(7, 0),
    );
    let dir = std::env::temp_dir().join("detour-check-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spec.json");
    std::fs::write(&path, spec.to_json()).unwrap();
    let (out2, err2, ok2) = detour(&["check", "--replay", path.to_str().unwrap()]);
    assert!(ok2, "stdout: {out2}\nstderr: {err2}");
    assert!(out2.contains("\"ok\":true"), "{out2}");
    assert!(out2.contains("\"passed\":1"), "{out2}");

    // A corrupt spec fails cleanly.
    std::fs::write(&path, "{not json").unwrap();
    let (_, err3, ok3) = detour(&["check", "--replay", path.to_str().unwrap()]);
    assert!(!ok3);
    assert!(err3.contains("bad scenario spec"), "{err3}");
}

#[test]
fn bad_flags_fail_cleanly() {
    let (_, err, ok) = detour(&[
        "simulate",
        "--client",
        "mars",
        "--provider",
        "gdrive",
        "--size",
        "10",
    ]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}
