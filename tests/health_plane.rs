//! End-to-end tests of the streaming aggregation & route-health plane:
//! live-vs-recorded scoreboard identity, golden snapshots of the health
//! and analyze reports, and window flushes driven by the engine clock.
//!
//! Regenerate the snapshots after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test health_plane
//! ```

use routing_detours::cloudstore::UploadOptions;
use routing_detours::detour_core::{run_job, Route};
use routing_detours::obs;
use routing_detours::scenarios::{Client, NorthAmerica};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test health_plane` to create it)",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        want,
        "rendered output diverged from {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

/// One deterministic three-run campaign (UBC → Google Drive via UAlberta),
/// returning the concatenated JSONL recording exactly as
/// `detour health --record` writes it.
fn campaign_jsonl(seed: u64, runs: u64) -> String {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(routing_detours::cloudstore::ProviderKind::GoogleDrive);
    let route = Route::via(world.hop_ualberta());
    let mut jsonl = String::new();
    for r in 0..runs {
        let mut sim = world.build_sim(seed + r);
        sim.enable_telemetry();
        run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            60 * routing_detours::netsim::units::MB,
            &route,
            UploadOptions::warm(client.class),
        )
        .expect("campaign run succeeds");
        let rec = sim.take_telemetry().expect("telemetry was enabled");
        jsonl.push_str(&obs::jsonl_log(&rec));
    }
    jsonl
}

fn board_for(trace: &obs::Trace) -> obs::HealthReport {
    let mut board = obs::HealthBoard::new(obs::SloPolicy::default());
    board.ingest(trace);
    board.report()
}

/// The issue's acceptance criterion: `detour health` must produce the same
/// scoreboard from a live campaign and from its recorded trace for the
/// same seed. The live path parses the in-memory JSONL; the recorded path
/// round-trips the same bytes through a file.
#[test]
fn live_and_recorded_scoreboards_are_identical() {
    let jsonl = campaign_jsonl(7, 3);
    let live = obs::parse_jsonl(&jsonl, "<live>").expect("live parse");

    let dir = std::env::temp_dir().join("detour-health-plane-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.jsonl");
    std::fs::write(&path, &jsonl).unwrap();
    let recorded = obs::load_trace(&path).expect("recorded parse");
    std::fs::remove_file(&path).ok();

    assert_eq!(live.spans.len(), recorded.spans.len());
    assert_eq!(live.events.len(), recorded.events.len());
    assert_eq!(board_for(&live).to_json(), board_for(&recorded).to_json());
    assert_eq!(board_for(&live).to_text(), board_for(&recorded).to_text());
}

/// Same seed ⇒ byte-identical recording ⇒ byte-identical scoreboard; a
/// different seed still produces the same cell keys (the campaign shape is
/// fixed) but is allowed to differ in timings.
#[test]
fn scoreboard_is_deterministic_per_seed() {
    let a = campaign_jsonl(7, 2);
    let b = campaign_jsonl(7, 2);
    assert_eq!(a, b, "same-seed campaigns must record identical bytes");
}

#[test]
fn health_report_snapshot() {
    let jsonl = campaign_jsonl(7, 3);
    let trace = obs::parse_jsonl(&jsonl, "<live>").expect("parse");
    let report = board_for(&trace);
    assert_golden("health_report.txt", &report.to_text());
    // The JSON rendering is canonical too (CI uploads it as an artifact).
    assert_golden("health_report.json", &report.to_json());
}

#[test]
fn analyze_report_snapshot() {
    let jsonl = campaign_jsonl(7, 1);
    let trace = obs::parse_jsonl(&jsonl, "<live>").expect("parse");
    let report = obs::analyze(&trace, 5);
    assert_golden("analyze_report.txt", &report.to_text());
}

/// The engine clock drives window flushes: a recorded run emits sim-time
/// tumbling windows for flow durations and delivered bytes, aligned to the
/// window width and flushed without any wall-clock involvement.
#[test]
fn engine_emits_watermarked_window_flushes() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(routing_detours::cloudstore::ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(5);
    sim.enable_telemetry();
    run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        60 * routing_detours::netsim::units::MB,
        &Route::Direct,
        UploadOptions::warm(client.class),
    )
    .expect("upload succeeds");
    let rec = sim.take_telemetry().expect("telemetry was enabled");
    assert!(
        !rec.window_flushes.is_empty(),
        "a multi-second upload must flush at least one window"
    );
    let width = obs::DEFAULT_WINDOW_NS;
    let mut saw_sketch = false;
    let mut saw_count = false;
    for f in &rec.window_flushes {
        assert_eq!(f.end_ns - f.start_ns, width, "window width for {}", f.name);
        assert_eq!(f.start_ns % width, 0, "window alignment for {}", f.name);
        match &f.value {
            obs::WindowValue::Sketch(s) => {
                assert!(!s.is_empty());
                saw_sketch = true;
            }
            obs::WindowValue::Count(c) => {
                assert!(*c > 0);
                saw_count = true;
            }
        }
    }
    assert!(saw_sketch, "flow-duration sketch windows expected");
    assert!(saw_count, "delivered-bytes count windows expected");
}
