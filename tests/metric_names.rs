//! Every metric the stack emits must follow the dotted naming scheme
//! (`crate.subsystem.metric`, lowercase `[a-z0-9_]` segments) that
//! `obs::is_valid_metric_name` enforces. The registry debug-asserts at
//! record time; this test sweeps a real recorded campaign so CI catches a
//! non-conforming name even in release builds.

use routing_detours::cloudstore::{BreakerRegistry, ProviderKind, UploadOptions};
use routing_detours::detour_core::{upload_with_fallback_breakers, Route};
use routing_detours::obs;
use routing_detours::scenarios::{Client, NorthAmerica};

#[test]
fn every_recorded_metric_follows_the_naming_scheme() {
    let world = NorthAmerica::new();
    // Exercise as many emitting layers as one campaign can: a detour job
    // (relay + cloudstore + netsim counters) with breaker-guarded failover
    // (core failover counters) across providers with spaces in their
    // display names (sanitization).
    let breakers = BreakerRegistry::default();
    let mut names: Vec<String> = Vec::new();
    for (client, provider) in [
        (Client::Ubc, ProviderKind::GoogleDrive),
        (Client::Purdue, ProviderKind::Dropbox),
    ] {
        let client = world.client(client);
        let provider = world.provider(provider);
        let mut sim = world.build_sim(3);
        sim.enable_telemetry();
        let routes = vec![Route::via(world.hop_ualberta()), Route::Direct];
        upload_with_fallback_breakers(
            &mut sim,
            client.node,
            client.class,
            &provider,
            20 * routing_detours::netsim::units::MB,
            &routes,
            UploadOptions::warm(client.class),
            &breakers,
        )
        .expect("some route works");
        let rec = sim.take_telemetry().expect("telemetry was enabled");
        for row in rec.metrics.snapshot().rows {
            names.push(row.name);
        }
    }
    assert!(!names.is_empty(), "the campaign must emit metrics");
    let bad: Vec<&String> = names
        .iter()
        .filter(|n| !obs::is_valid_metric_name(n))
        .collect();
    assert!(
        bad.is_empty(),
        "metrics violating the dotted naming scheme: {bad:?}"
    );
}

#[test]
fn sanitizer_makes_display_names_conform() {
    for raw in ["Google Drive", "via UAlberta+UMich", "OneDrive", ""] {
        let name = format!("cloudstore.bytes.{}", obs::metric_segment(raw));
        assert!(
            obs::is_valid_metric_name(&name),
            "segment for {raw:?} produced invalid name {name}"
        );
    }
}
