//! Integration tests: the paper's qualitative findings must hold end to end
//! (quick protocol — the full 7-run version runs in the bench harness).

use routing_detours::cloudstore::ProviderKind;
use routing_detours::detour_core::compare_traceroutes;
use routing_detours::measure::OverlapVerdict;
use routing_detours::scenarios::{Client, ExperimentSet, NorthAmerica};

#[test]
fn fig2_ubc_drive_detour_wins() {
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let r = set.fig2().expect("fig2 campaign");
    // Paper Table I row A: Fastest via UAlberta, Fast Direct, Slowest UMich.
    assert_eq!(r.ranking(), vec![1, 0, 2]);
    // And the effect is big: >2x at the largest size (paper: 2.4x).
    let last = r.sizes.len() - 1;
    assert!(r.stats(last, 0).mean / r.stats(last, 1).mean > 2.0);
}

#[test]
fn fig4_ubc_dropbox_direct_wins() {
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let r = set.fig4().expect("fig4 campaign");
    assert_eq!(r.ranking(), vec![0, 1, 2]);
}

#[test]
fn fig7_purdue_drive_both_detours_win() {
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let r = set.fig7().expect("fig7 campaign");
    // Paper Table I row B: both detours beat direct for Google Drive.
    let ranking = r.ranking();
    assert_eq!(ranking[2], 0, "direct must be slowest: {ranking:?}");
    // Massive effect (paper: 70-84% reductions).
    let last = r.sizes.len() - 1;
    for detour in 1..=2 {
        let rel = r.stats(last, detour).relative_to(r.stats(last, 0));
        assert!(rel < -50.0, "detour {detour} only improved {rel:.1}%");
    }
}

#[test]
fn fig10_ucla_no_detour_helps() {
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let r = set.fig10().expect("fig10 campaign");
    assert_eq!(r.ranking()[0], 0, "last-mile-limited client: direct wins");
    let r11 = set.fig11().expect("fig11 campaign");
    assert_eq!(r11.ranking()[0], 0);
}

#[test]
fn purdue_onedrive_has_large_variance() {
    // The paper's Table IV: OneDrive direct from Purdue has σ ≈ 30% of the
    // mean. Our background process must produce substantial spread too.
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let r = set.fig9().expect("fig9 campaign");
    let last = r.sizes.len() - 1;
    let direct = r.stats(last, 0);
    assert!(
        direct.cv() > 0.05,
        "direct OneDrive cv {} too small",
        direct.cv()
    );
}

#[test]
fn table4_overlap_analysis_reproduces() {
    // For at least one Purdue cell the ±1σ intervals must overlap (the
    // paper's reason to distrust detours there).
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let dropbox = set.fig8().expect("fig8");
    let mut any_overlap = false;
    for si in 0..dropbox.sizes.len() {
        for ri in 1..dropbox.routes.len() {
            if dropbox.stats(si, 0).overlap_1sigma(dropbox.stats(si, ri))
                == OverlapVerdict::Overlapping
            {
                any_overlap = true;
            }
        }
    }
    assert!(
        any_overlap,
        "no overlapping intervals at Purdue→Dropbox at all"
    );
}

#[test]
fn traceroutes_show_pacificwave_divergence() {
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let f5 = set.fig5();
    let f6 = set.fig6();
    assert!(f5.crosses("vncv1rtr2.canarie.ca"));
    assert!(f6.crosses("vncv1rtr2.canarie.ca"));
    let cmp = compare_traceroutes(&f5, &f6);
    assert_eq!(cmp.junction.as_deref(), Some("vncv1rtr2.canarie.ca"));
    assert!(cmp.only_in_first.iter().any(|h| h.contains("pacificwave")));
    assert!(cmp.diverges_after_junction());
}

#[test]
fn tables_1_and_5_render_for_all_nine_campaigns() {
    let world = NorthAmerica::new();
    let mut set = ExperimentSet::quick(&world);
    set.sizes = vec![30 * routing_detours::netsim::units::MB];
    let all = set.all_campaigns().expect("9 campaigns");
    assert_eq!(all.len(), 9);
    let t1 = routing_detours::scenarios::summary::table1(&all);
    let text = t1.render();
    for client in Client::all() {
        assert!(text.contains(client.name()), "{text}");
    }
    for kind in ProviderKind::all() {
        assert!(text.contains(kind.display_name()), "{text}");
    }
    let t5 = routing_detours::scenarios::summary::table5(&all);
    assert_eq!(t5.len(), 9);
}

#[test]
fn campaigns_are_deterministic_across_thread_counts() {
    // Parallel scheduling must not leak into results: same seeds, same
    // stats, whether run on 1 thread or many.
    let world = NorthAmerica::new();
    let mut set1 = ExperimentSet::quick(&world);
    set1.threads = 1;
    let mut set8 = ExperimentSet::quick(&world);
    set8.threads = 8;
    let a = set1.fig2().unwrap();
    let b = set8.fig2().unwrap();
    for (ra, rb) in a.cells.iter().zip(&b.cells) {
        for (sa, sb) in ra.iter().zip(rb) {
            assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
            assert_eq!(sa.std_dev.to_bits(), sb.std_dev.to_bits());
        }
    }
}
