//! Integration tests: faults, throttling, token expiry and firewalls on
//! the calibrated scenario.

use routing_detours::cloudstore::{FaultPlan, ProviderKind, RetryPolicy, UploadOptions};
use routing_detours::detour_core::{run_job, JobDetail, Route};
use routing_detours::netsim::error::NetError;
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::middlebox::FirewallRule;
use routing_detours::netsim::time::SimTime;
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::{Client, NorthAmerica};

#[test]
fn flaky_frontend_is_survivable_via_retries() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world
        .provider(ProviderKind::GoogleDrive)
        .with_faults(FaultPlan::flaky());
    let mut sim = world.build_sim(21);
    let report = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        60 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .expect("flaky upload still completes");
    // Compare against the clean provider: faults must cost time.
    let clean = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(21);
    let clean_report = run_job(
        &mut sim,
        client.node,
        client.class,
        &clean,
        60 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .unwrap();
    assert!(report.elapsed >= clean_report.elapsed);
}

#[test]
fn detours_carry_fault_handling_too() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world
        .provider(ProviderKind::GoogleDrive)
        .with_faults(FaultPlan::flaky());
    let mut sim = world.build_sim(22);
    let report = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        60 * MB,
        &Route::via(world.hop_ualberta()),
        UploadOptions::warm(FlowClass::Research),
    )
    .expect("flaky detoured upload completes");
    assert_eq!(report.bytes, 60 * MB);
}

#[test]
fn token_expiry_mid_campaign_is_handled() {
    // Purdue→Google direct at ~1 Mbps: a 100 MB upload outlives the
    // 3600 s token on bad seeds; the session must refresh, not fail.
    let world = NorthAmerica::new();
    let client = world.client(Client::Purdue);
    let provider = world.provider(ProviderKind::GoogleDrive);
    for seed in 0..5 {
        let mut sim = world.build_sim(seed);
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            100 * MB,
            &Route::Direct,
            UploadOptions::warm(FlowClass::PlanetLab),
        )
        .expect("upload completes despite token expiry risk");
        assert_eq!(report.bytes, 100 * MB);
    }
}

#[test]
fn firewall_on_access_link_blocks_probes_only() {
    // A Science-DMZ-style rule: probe-class traffic is dropped at the UBC
    // access link; bulk PlanetLab traffic still flows.
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let topo = world.topology();
    let ubc_access = topo
        .link_between(n.ubc, topo.node_by_name("a0-a1.net.ubc.ca").unwrap())
        .expect("access link");
    let mut sim = world.build_sim(1);
    sim.add_firewall(FirewallRule::drop_class(
        "campus-fw",
        ubc_access,
        FlowClass::Probe,
    ));

    use routing_detours::netsim::engine::TransferRequest;
    use routing_detours::netsim::flow::FlowSpec;
    let err = sim
        .run_transfer(TransferRequest {
            spec: FlowSpec::new(n.ubc, n.ualberta, MB, FlowClass::Probe),
        })
        .unwrap_err();
    assert!(matches!(
        err,
        routing_detours::netsim::error::NetError::Blocked { .. }
    ));

    let ok = sim.run_transfer(TransferRequest {
        spec: FlowSpec::new(n.ubc, n.ualberta, MB, FlowClass::PlanetLab),
    });
    assert!(ok.is_ok(), "bulk traffic must pass: {ok:?}");
}

#[test]
fn throttle_storm_exhausts_the_retry_budget_in_bounded_sim_time() {
    // Every part request answered 429: throttle waits must charge the
    // shared retry budget, ending the session with a typed error instead
    // of the historical unbounded 429-retry loop.
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let mut faults = FaultPlan::flaky();
    faults.throttle_prob = 1.0;
    faults.transient_prob = 0.0;
    let provider = world
        .provider(ProviderKind::GoogleDrive)
        .with_faults(faults);
    let mut sim = world.build_sim(17);
    let err = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        10 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .expect_err("a 100% throttle storm can never complete");
    assert!(
        matches!(err, NetError::RetryBudgetExhausted { .. }),
        "expected retry-budget exhaustion, got {err:?}"
    );
    // Budget of 20 waits x 2s Retry-After plus overheads: well under an
    // hour of simulated time, and nowhere near an infinite loop.
    assert!(
        sim.now() < SimTime::from_secs(3600),
        "throttle storm ran for {} of sim time",
        sim.now()
    );
}

#[test]
fn transfer_deadline_is_honored_end_to_end() {
    // A hard 2 s deadline under heavy throttling: the session must give
    // up with DeadlineExceeded rather than keep waiting out 429s.
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let mut faults = FaultPlan::flaky();
    faults.throttle_prob = 0.5;
    faults.transient_prob = 0.0;
    let provider = world
        .provider(ProviderKind::GoogleDrive)
        .with_faults(faults);
    let mut opts = UploadOptions::warm(FlowClass::PlanetLab);
    opts.retry = Some(RetryPolicy::from_plan(&faults).with_deadline(SimTime::from_secs(2)));
    let mut sim = world.build_sim(23);
    let err = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        60 * MB,
        &Route::Direct,
        opts,
    )
    .expect_err("2s is not enough for 60 MB under 50% throttling");
    assert!(
        matches!(err, NetError::DeadlineExceeded { .. }),
        "expected deadline exceeded, got {err:?}"
    );
}

#[test]
fn faulty_runs_are_deterministic_per_seed() {
    // The retry path draws jittered backoffs from the sim PRNG; two
    // same-seed runs must still be bit-identical, stats included.
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world
        .provider(ProviderKind::Dropbox)
        .with_faults(FaultPlan::flaky());
    let run = |seed: u64| {
        let mut sim = world.build_sim(seed);
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            100 * MB,
            &Route::Direct,
            UploadOptions::warm(FlowClass::PlanetLab),
        )
        .expect("flaky upload completes");
        match report.detail {
            JobDetail::Direct(stats) => stats,
            _ => unreachable!("direct route"),
        }
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed must reproduce identical transfer stats");
    assert!(
        a.retries + a.throttles > 0,
        "Dropbox's 4 MiB parts give 100 MB ≈ 24 fault rolls; seed 77 must hit some"
    );
    let c = run(78);
    assert_ne!(a.elapsed, c.elapsed, "different seed, different jitter");
}

#[test]
fn hopeless_frontend_fails_cleanly_not_forever() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let mut faults = FaultPlan::flaky();
    faults.transient_prob = 1.0;
    faults.throttle_prob = 0.0;
    let provider = world.provider(ProviderKind::Dropbox).with_faults(faults);
    let mut sim = world.build_sim(31);
    let err = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        10 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            routing_detours::netsim::error::NetError::Blocked { .. }
        ),
        "expected bounded retries then failure, got {err:?}"
    );
}
