//! Integration tests: faults, throttling, token expiry and firewalls on
//! the calibrated scenario.

use routing_detours::cloudstore::{FaultPlan, ProviderKind, UploadOptions};
use routing_detours::detour_core::{run_job, Route};
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::middlebox::FirewallRule;
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::{Client, NorthAmerica};

#[test]
fn flaky_frontend_is_survivable_via_retries() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world
        .provider(ProviderKind::GoogleDrive)
        .with_faults(FaultPlan::flaky());
    let mut sim = world.build_sim(21);
    let report = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        60 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .expect("flaky upload still completes");
    // Compare against the clean provider: faults must cost time.
    let clean = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(21);
    let clean_report = run_job(
        &mut sim,
        client.node,
        client.class,
        &clean,
        60 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .unwrap();
    assert!(report.elapsed >= clean_report.elapsed);
}

#[test]
fn detours_carry_fault_handling_too() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world
        .provider(ProviderKind::GoogleDrive)
        .with_faults(FaultPlan::flaky());
    let mut sim = world.build_sim(22);
    let report = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        60 * MB,
        &Route::via(world.hop_ualberta()),
        UploadOptions::warm(FlowClass::Research),
    )
    .expect("flaky detoured upload completes");
    assert_eq!(report.bytes, 60 * MB);
}

#[test]
fn token_expiry_mid_campaign_is_handled() {
    // Purdue→Google direct at ~1 Mbps: a 100 MB upload outlives the
    // 3600 s token on bad seeds; the session must refresh, not fail.
    let world = NorthAmerica::new();
    let client = world.client(Client::Purdue);
    let provider = world.provider(ProviderKind::GoogleDrive);
    for seed in 0..5 {
        let mut sim = world.build_sim(seed);
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            100 * MB,
            &Route::Direct,
            UploadOptions::warm(FlowClass::PlanetLab),
        )
        .expect("upload completes despite token expiry risk");
        assert_eq!(report.bytes, 100 * MB);
    }
}

#[test]
fn firewall_on_access_link_blocks_probes_only() {
    // A Science-DMZ-style rule: probe-class traffic is dropped at the UBC
    // access link; bulk PlanetLab traffic still flows.
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let topo = world.topology();
    let ubc_access = topo
        .link_between(n.ubc, topo.node_by_name("a0-a1.net.ubc.ca").unwrap())
        .expect("access link");
    let mut sim = world.build_sim(1);
    sim.add_firewall(FirewallRule::drop_class(
        "campus-fw",
        ubc_access,
        FlowClass::Probe,
    ));

    use routing_detours::netsim::engine::TransferRequest;
    use routing_detours::netsim::flow::FlowSpec;
    let err = sim
        .run_transfer(TransferRequest {
            spec: FlowSpec::new(n.ubc, n.ualberta, MB, FlowClass::Probe),
        })
        .unwrap_err();
    assert!(matches!(
        err,
        routing_detours::netsim::error::NetError::Blocked { .. }
    ));

    let ok = sim.run_transfer(TransferRequest {
        spec: FlowSpec::new(n.ubc, n.ualberta, MB, FlowClass::PlanetLab),
    });
    assert!(ok.is_ok(), "bulk traffic must pass: {ok:?}");
}

#[test]
fn hopeless_frontend_fails_cleanly_not_forever() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let mut faults = FaultPlan::flaky();
    faults.transient_prob = 1.0;
    faults.throttle_prob = 0.0;
    let provider = world.provider(ProviderKind::Dropbox).with_faults(faults);
    let mut sim = world.build_sim(31);
    let err = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        10 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            routing_detours::netsim::error::NetError::Blocked { .. }
        ),
        "expected bounded retries then failure, got {err:?}"
    );
}
