//! End-to-end telemetry contract on the paper's Fig 2 scenario (UBC →
//! Google Drive): the span hierarchy nests job → session → chunk → RPC →
//! flow, the exporters emit valid, deterministic output, and a campaign
//! replay reproduces the campaign's own seed.

use routing_detours::cloudstore::{ProviderKind, UploadOptions};
use routing_detours::detour_core::{run_job, Route};
use routing_detours::netsim::units::MB;
use routing_detours::obs;
use routing_detours::scenarios::{Client, ExperimentSet, NorthAmerica};

/// One traced 10 MB UBC→Google Drive upload; returns the recording.
fn ubc_gdrive_recording(route: &Route, seed: u64) -> obs::Recording {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(seed);
    sim.enable_telemetry();
    run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        10 * MB,
        route,
        UploadOptions::warm(client.class),
    )
    .expect("upload succeeds");
    sim.take_telemetry().expect("telemetry enabled")
}

#[test]
fn direct_upload_nests_session_chunk_rpc_flow() {
    let rec = ubc_gdrive_recording(&Route::Direct, 1);
    // At least one flow span sits under rpc.part under part under
    // upload-session under job — the tentpole's required hierarchy.
    let nested = rec.spans.iter().any(|s| {
        if s.name != "flow" {
            return false;
        }
        let chain: Vec<&str> = rec.ancestors(s.id).iter().map(|a| a.name).collect();
        chain == ["rpc.part", "part", "upload-session", "job"]
    });
    assert!(
        nested,
        "no flow span nests rpc.part → part → upload-session → job"
    );
    // Every parent reference points at a recorded span.
    for s in &rec.spans {
        if s.parent.is_some() {
            assert!(
                rec.span(s.parent).is_some(),
                "dangling parent on {}",
                s.name
            );
        }
    }
    // Spans cover each category of the pipeline.
    for name in ["job", "upload-session", "part", "rpc.init", "flow"] {
        assert!(
            rec.spans.iter().any(|s| s.name == name),
            "missing span {name}"
        );
    }
    // Metrics saw the transfer.
    assert_eq!(rec.metrics.counter("core.bytes.route.direct"), 10 * MB);
    assert!(rec.metrics.counter("netsim.flows_started") > 0);
    assert!(rec
        .metrics
        .histogram("netsim.link_utilization_pct")
        .is_some());
}

#[test]
fn detour_upload_adds_relay_spans() {
    let world = NorthAmerica::new();
    let route = Route::via(world.hop_ualberta());
    let rec = ubc_gdrive_recording(&route, 1);
    let leg = rec
        .spans
        .iter()
        .find(|s| s.name == "rsync-leg")
        .expect("detour records an rsync leg");
    let chain: Vec<&str> = rec.ancestors(leg.id).iter().map(|a| a.name).collect();
    assert_eq!(chain, ["store-forward", "job"]);
    assert!(rec.events.iter().any(|e| e.name == "relay.staged"));
    assert_eq!(
        rec.metrics.gauge("relay.staging_bytes").unwrap().max,
        (10 * MB) as f64
    );
}

#[test]
fn exports_are_byte_identical_for_a_fixed_seed() {
    let a = ubc_gdrive_recording(&Route::Direct, 42);
    let b = ubc_gdrive_recording(&Route::Direct, 42);
    // Span balance: a completed traced run leaves no job-tree span open.
    // (Ambient background flows are parentless and perpetual; they may
    // legitimately still be in flight at capture.)
    for s in &a.spans {
        if s.name == "flow" && !s.parent.is_some() {
            continue;
        }
        assert!(s.end_ns.is_some(), "span {} never ended", s.name);
    }
    assert_eq!(
        obs::jsonl_log(&a),
        obs::jsonl_log(&b),
        "JSONL log must be deterministic"
    );
    assert_eq!(
        obs::chrome_trace_json(&a),
        obs::chrome_trace_json(&b),
        "Chrome trace must be deterministic"
    );
    // A different seed shifts background traffic: the trace must differ.
    let c = ubc_gdrive_recording(&Route::Direct, 43);
    assert_ne!(obs::jsonl_log(&a), obs::jsonl_log(&c), "seed must matter");
}

#[test]
fn chrome_trace_is_valid_json_with_nested_span_args() {
    let rec = ubc_gdrive_recording(&Route::Direct, 7);
    let json = obs::chrome_trace_json(&rec);
    let mut p = Json {
        s: json.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value();
    p.skip_ws();
    assert_eq!(p.i, p.s.len(), "trailing garbage after JSON document");
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.contains("\"traceEvents\""));
    // Complete (X) events carry parent_span args for the nested spans.
    assert!(json.contains("\"parent_span\""));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), rec.spans.len());
    // Every JSONL line parses on its own, too.
    for line in obs::jsonl_log(&rec).lines() {
        let mut p = Json {
            s: line.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        p.value();
        p.skip_ws();
        assert_eq!(p.i, p.s.len(), "invalid JSONL line: {line}");
    }
}

#[test]
fn aborted_session_exports_balanced_spans() {
    // A hopeless provider (every part fails transiently) aborts the upload
    // mid-transfer. The session must close its own span *and* every chunk
    // span still open at the abort, or exporters emit unbalanced traces.
    use routing_detours::cloudstore::FaultPlan;
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let mut faults = FaultPlan::flaky();
    faults.transient_prob = 1.0;
    faults.throttle_prob = 0.0;
    let provider = world.provider(ProviderKind::Dropbox).with_faults(faults);
    let mut sim = world.build_sim(5);
    sim.enable_telemetry();
    let err = run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        20 * MB,
        &Route::Direct,
        UploadOptions::warm(client.class),
    )
    .expect_err("hopeless provider must abort");
    // 20 MB is 5 Dropbox parts; the shared retry budget (20) runs out
    // before any single part reaches its per-part retry cap.
    assert!(matches!(
        err,
        routing_detours::netsim::error::NetError::RetryBudgetExhausted { .. }
    ));
    let rec = sim.take_telemetry().expect("telemetry enabled");
    assert!(
        rec.events.iter().any(|e| e.name == "session.error"),
        "abort must be recorded"
    );
    for s in &rec.spans {
        // Ambient background flows (parentless) outlive the job; every
        // span in the aborted job's tree must still be closed.
        if s.name == "flow" && !s.parent.is_some() {
            continue;
        }
        assert!(
            s.end_ns.is_some(),
            "span {} leaked open across the abort",
            s.name
        );
    }
}

#[test]
fn campaign_trace_replay_is_deterministic() {
    let world = NorthAmerica::new();
    let set = ExperimentSet::quick(&world);
    let campaign = set.campaign_spec(Client::Ubc, ProviderKind::GoogleDrive);
    let run = campaign.protocol.discard;
    let (secs_a, rec_a) = campaign.trace_run(0, 0, run).expect("trace run");
    let (secs_b, rec_b) = campaign.trace_run(0, 0, run).expect("trace run");
    assert_eq!(secs_a.to_bits(), secs_b.to_bits());
    assert_eq!(obs::jsonl_log(&rec_a), obs::jsonl_log(&rec_b));
    assert!(rec_a.spans.iter().any(|s| s.name == "upload-session"));
}

/// Minimal recursive-descent JSON syntax checker: panics (via assert) on
/// malformed input. Checks syntax only — quite enough to catch unescaped
/// quotes, trailing commas, or truncated output from the exporters.
struct Json<'a> {
    s: &'a [u8],
    i: usize,
}

impl Json<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        assert_eq!(
            self.s.get(self.i),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) {
        self.skip_ws();
        match self.s.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => panic!("unexpected {other:?} at byte {}", self.i),
        }
    }

    fn object(&mut self) {
        self.eat(b'{');
        self.skip_ws();
        if self.s.get(self.i) == Some(&b'}') {
            self.i += 1;
            return;
        }
        loop {
            self.skip_ws();
            self.string();
            self.skip_ws();
            self.eat(b':');
            self.value();
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return;
                }
                other => panic!("bad object separator {other:?} at byte {}", self.i),
            }
        }
    }

    fn array(&mut self) {
        self.eat(b'[');
        self.skip_ws();
        if self.s.get(self.i) == Some(&b']') {
            self.i += 1;
            return;
        }
        loop {
            self.value();
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return;
                }
                other => panic!("bad array separator {other:?} at byte {}", self.i),
            }
        }
    }

    fn string(&mut self) {
        self.eat(b'"');
        loop {
            match self.s.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return;
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                        Some(b'u') => {
                            for k in 1..=4 {
                                assert!(
                                    self.s.get(self.i + k).is_some_and(u8::is_ascii_hexdigit),
                                    "bad \\u escape at byte {}",
                                    self.i
                                );
                            }
                            self.i += 5;
                        }
                        other => panic!("bad escape {other:?} at byte {}", self.i),
                    }
                }
                Some(c) if *c >= 0x20 => self.i += 1,
                other => panic!("bad string byte {other:?} at byte {}", self.i),
            }
        }
    }

    fn number(&mut self) {
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let start = self.i;
        while matches!(
            self.s.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        assert!(self.i > start, "empty number at byte {start}");
    }

    fn literal(&mut self, lit: &[u8]) {
        assert_eq!(
            self.s.get(self.i..self.i + lit.len()),
            Some(lit),
            "bad literal at byte {}",
            self.i
        );
        self.i += lit.len();
    }
}
