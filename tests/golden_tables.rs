//! Golden-file snapshot tests for the table renderers.
//!
//! The paper-style tables are the repository's primary human-facing output;
//! a formatting regression (shifted column, changed sign convention,
//! reordered metric rows) silently corrupts every artifact. These tests
//! render fixed, hand-built inputs and compare byte-for-byte against
//! checked-in snapshots in `tests/golden/`.
//!
//! To regenerate after an intentional formatting change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_tables
//! ```
//!
//! then review the diff of `tests/golden/*.txt` like any other code change.

use routing_detours::detour_core::{CampaignResult, Hop, Route};
use routing_detours::measure::{metrics_table, Stats};
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::topology::NodeId;
use routing_detours::netsim::units::MB;
use routing_detours::obs::MetricsRegistry;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `rendered` against `tests/golden/<name>`, or rewrite the golden
/// when `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test golden_tables` to create it)",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        want,
        "rendered output diverged from {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

fn stats(n: usize, mean: f64, std_dev: f64) -> Stats {
    Stats {
        n,
        mean,
        std_dev,
        min: mean - std_dev,
        max: mean + std_dev,
    }
}

/// A fixed campaign in the shape of the paper's Tables II–IV: UBC to
/// Google Drive, direct vs two detours, three file sizes. Values are
/// hand-picked constants, NOT simulator output, so the snapshot only
/// exercises the rendering.
fn fixed_campaign() -> CampaignResult {
    CampaignResult {
        client_name: "UBC".into(),
        provider_name: "Google Drive".into(),
        routes: vec![
            Route::Direct,
            Route::via(Hop::new(NodeId(3), FlowClass::Research, "UAlberta")),
            Route::via(Hop::new(NodeId(4), FlowClass::PlanetLab, "UMich")),
        ],
        sizes: vec![10 * MB, 60 * MB, 100 * MB],
        cells: vec![
            vec![
                stats(5, 9.46, 0.31),
                stats(5, 6.47, 0.22),
                stats(5, 11.02, 0.48),
            ],
            vec![
                stats(5, 55.91, 1.75),
                stats(5, 38.42, 1.2),
                stats(5, 63.75, 2.9),
            ],
            vec![
                stats(5, 92.71, 3.52),
                stats(5, 64.14, 2.05),
                stats(5, 104.85, 4.8),
            ],
        ],
    }
}

#[test]
fn paper_table_snapshot() {
    let table = fixed_campaign().paper_table("UBC -> Google Drive, upload time");
    assert_golden("paper_table.txt", &table.render());
}

#[test]
fn mean_std_table_snapshot() {
    let table = fixed_campaign().mean_std_table("UBC -> Google Drive, mean ± σ");
    assert_golden("mean_std_table.txt", &table.render());
}

#[test]
fn metrics_table_snapshot() {
    // A fixed registry covering all three metric kinds, including an
    // all-equal histogram (flat percentiles) and a repeatedly-set gauge.
    let mut m = MetricsRegistry::default();
    m.counter_add("cloudstore.retries", 3);
    m.counter_add("netsim.flows_started", 41);
    m.gauge_set("relay.staging_bytes", 524288.0);
    m.gauge_set("relay.staging_bytes", 1048576.0);
    for _ in 0..4 {
        m.hist_record("netsim.realloc_wall_ns", 2000);
    }
    m.hist_record("rpc.rtt_ns", 1_500_000);
    m.hist_record("rpc.rtt_ns", 2_500_000);
    m.hist_record("rpc.rtt_ns", 9_000_000);
    let table = metrics_table(&m.snapshot(), "fixed metrics");
    assert_golden("metrics_table.txt", &table.render());
}
