//! Play a realistic personal-cloud sync session (many small files, a few
//! large ones) from Purdue to Google Drive under several routing policies,
//! including the sync-client trick of bundling small files.
//!
//! ```sh
//! cargo run --release --example sync_session
//! ```

use routing_detours::cloudstore::{plan_batches, upload_batched, BatchPolicy, ProviderKind};
use routing_detours::scenarios::{run_session, Client, NorthAmerica, SessionPolicy, SyncWorkload};

fn main() {
    let world = NorthAmerica::new();
    let workload = SyncWorkload::personal_cloud(7, 20);
    let total_mb = workload.total_bytes() as f64 / 1e6;
    println!(
        "sync session: {} files, {:.0} MB total, Purdue -> Google Drive\n",
        workload.files.len(),
        total_mb
    );

    for (label, policy) in [
        ("always direct", SessionPolicy::AlwaysDirect),
        ("fixed via UAlberta", SessionPolicy::FixedRoute(1)),
        ("fixed via UMich", SessionPolicy::FixedRoute(2)),
        ("adaptive (ε=0.1)", SessionPolicy::Adaptive { epsilon: 0.1 }),
    ] {
        let report = run_session(
            &world,
            Client::Purdue,
            ProviderKind::GoogleDrive,
            &workload,
            policy,
            1,
        );
        println!("{label:<22} {:.1} s", report.total_secs);
        if matches!(policy, SessionPolicy::Adaptive { .. }) {
            let names = ["direct", "UAlberta", "UMich"];
            let choices: Vec<&str> = report.choices.iter().map(|&c| names[c]).collect();
            println!("{:<22} choices: {choices:?}", "");
        }
    }

    // Bundling: archive small files before upload (fewer sessions, fewer
    // round trips; the large files still dominate the bytes).
    let plan = plan_batches(&workload.files, BatchPolicy::default());
    let client = world.client(Client::Purdue);
    let provider = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(1);
    let report = upload_batched(&mut sim, client.node, &provider, &plan, client.class)
        .expect("batched session");
    println!(
        "{:<22} {:.1} s  ({} objects instead of {}, {} RPCs)",
        "direct + bundling",
        report.elapsed.as_secs_f64(),
        report.objects,
        workload.files.len(),
        report.rpcs
    );
    println!("\nSmall files are overhead-bound (bundling helps); large files are");
    println!("path-bound (detours help). A real client wants both tricks.");
}
