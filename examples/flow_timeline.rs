//! Watch a flow's rate over time: why Purdue→Google Drive is pathological.
//!
//! Enables flow tracing, uploads 100 MB directly from Purdue while the
//! simulated commodity peering seethes with background traffic, and prints
//! the achieved-rate timeline as a sparkline — the shape behind the
//! enormous error bars of the paper's Fig 7.
//!
//! ```sh
//! cargo run --release --example flow_timeline
//! ```

use routing_detours::measure::chart::sparkline;
use routing_detours::netsim::engine::{Ctx, Event, FlowId, Process, Value};
use routing_detours::netsim::flow::{FlowClass, FlowSpec};
use routing_detours::netsim::topology::NodeId;
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::NorthAmerica;

/// Runs one raw flow and finishes with its id (so we can read the trace).
struct TracedFlow {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
}

impl Process for TracedFlow {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                ctx.start_flow(FlowSpec::new(
                    self.src,
                    self.dst,
                    self.bytes,
                    FlowClass::PlanetLab,
                ))
                .expect("flow starts");
            }
            Event::FlowCompleted { flow, elapsed, .. } => {
                ctx.finish(Value::List(vec![Value::U64(flow.0), Value::Time(elapsed)]));
            }
            _ => {}
        }
    }
}

fn main() {
    let world = NorthAmerica::new();
    let n = *world.nodes();

    println!("100 MB raw transfer, rate over time (64 buckets, bucket = total/64):\n");
    for (label, src, dst) in [
        (
            "Purdue -> Google (congested commodity peering)",
            n.purdue,
            n.google_pop,
        ),
        (
            "UBC    -> Google (pacificwave policer)",
            n.ubc,
            n.google_pop,
        ),
        ("UBC    -> UAlberta (clean CANARIE)", n.ubc, n.ualberta),
    ] {
        let mut sim = world.build_sim(11);
        sim.enable_flow_tracing();
        let v = sim
            .run_process(Box::new(TracedFlow {
                src,
                dst,
                bytes: 100 * MB,
            }))
            .expect("transfer completes");
        let items = v.expect_list();
        let flow = FlowId(items[0].expect_u64());
        let elapsed = items[1].expect_time();
        let trace = sim.flow_trace(flow).expect("flow tracing enabled above");
        let samples = trace.sample(64);
        let mean_mbps = samples.iter().sum::<f64>() / samples.len() as f64 * 8.0 / 1e6;
        println!("{label}");
        println!("  {}", sparkline(&samples));
        println!("  total {elapsed}, mean rate {mean_mbps:.1} Mbps\n");
    }
    println!("The Purdue line is the paper's story: a bursty, contended peering where");
    println!("per-run luck decides whether a 100 MB upload takes 8 or 14 minutes.");
}
