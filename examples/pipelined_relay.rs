//! Store-and-forward vs cut-through (pipelined) relaying.
//!
//! The paper's detour pays `t1 + t2`: the file fully lands on the DTN
//! before the cloud upload starts. Its future-work section points at
//! overlapping the legs; this example measures the win.
//!
//! ```sh
//! cargo run --release --example pipelined_relay
//! ```

use routing_detours::cloudstore::{ProviderKind, UploadOptions};
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::units::MB;
use routing_detours::relay::detour_upload;
use routing_detours::relay::pipeline::pipelined_upload;
use routing_detours::scenarios::NorthAmerica;

fn main() {
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let drive = world.provider(ProviderKind::GoogleDrive);

    println!("UBC -> UAlberta -> Google Drive, store-and-forward vs pipelined\n");
    println!(
        "{:>10} {:>18} {:>14} {:>10}",
        "size (MB)", "store-&-fwd (s)", "pipelined (s)", "saved"
    );
    for mb in [10u64, 20, 40, 60, 100] {
        let mut sim = world.build_sim(7);
        let sf = detour_upload(
            &mut sim,
            vec![n.ubc, n.ualberta],
            vec![FlowClass::PlanetLab, FlowClass::Research],
            &drive,
            mb * MB,
            UploadOptions::warm(FlowClass::Research),
        )
        .expect("store-and-forward detour");

        let mut sim = world.build_sim(7);
        let pl = pipelined_upload(
            &mut sim,
            n.ubc,
            n.ualberta,
            &drive,
            mb * MB,
            FlowClass::PlanetLab,
            FlowClass::Research,
        )
        .expect("pipelined detour");

        let saved = (sf.total.as_secs_f64() - pl.total.as_secs_f64()) / sf.total.as_secs_f64();
        println!(
            "{:>10} {:>18.2} {:>14.2} {:>9.1}%",
            mb,
            sf.total.as_secs_f64(),
            pl.total.as_secs_f64(),
            saved * 100.0
        );
    }
    println!("\nStore-and-forward time is the sum of the legs; pipelining approaches");
    println!("max(leg1, leg2) plus one chunk of latency.");
}
