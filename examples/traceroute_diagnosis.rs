//! Diagnose *why* UBC's Google uploads are slow, the way the paper did:
//! run traceroutes from UBC and UAlberta to the same Google frontend,
//! find where they diverge, and compare attainable path rates.
//!
//! ```sh
//! cargo run --release --example traceroute_diagnosis
//! ```

use routing_detours::detour_core::compare_traceroutes;
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::trace::Traceroute;
use routing_detours::scenarios::NorthAmerica;

fn main() {
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let mut sim = world.build_sim(5);

    let from_ubc = Traceroute::run(sim.core(), n.ubc, n.google_pop).expect("route");
    let from_ua = Traceroute::run(sim.core(), n.ualberta, n.google_pop).expect("route");

    println!("--- Fig 5: UBC to Google Drive ---\n{from_ubc}");
    println!("--- Fig 6: UAlberta to Google Drive ---\n{from_ua}");

    let cmp = compare_traceroutes(&from_ubc, &from_ua);
    println!("--- analysis ---");
    println!(
        "shared middlebox: {}",
        cmp.junction.as_deref().unwrap_or("(none)")
    );
    println!(
        "after it, only the UBC path crosses: {:?}",
        cmp.only_in_first
    );
    println!(
        "after it, only the UAlberta path crosses: {:?}",
        cmp.only_in_second
    );

    let ubc_rate = sim
        .core()
        .idle_path_rate(n.ubc, n.google_pop, FlowClass::PlanetLab)
        .expect("rate");
    let ua_rate = sim
        .core()
        .idle_path_rate(n.ualberta, n.google_pop, FlowClass::Research)
        .expect("rate");
    println!("\nattainable single-flow rate UBC -> Drive:      {ubc_rate}");
    println!("attainable single-flow rate UAlberta -> Drive: {ua_rate}");
    println!(
        "\nBoth paths cross {}, but PlanetLab-class traffic handed to the\n\
         pacificwave link is policed — the paper's §III-A observation, and the\n\
         reason the geographically absurd UBC->Edmonton->Mountain View detour wins.",
        cmp.junction.as_deref().unwrap_or("the CANARIE router")
    );
}
