//! Automatic detour selection — the paper's future work, implemented.
//!
//! Compares three selectors on every (client × provider) pair:
//! the measured oracle (what the authors did by hand), the cheap
//! probe-based predictor, and the paper's §III-B overlap-aware decision
//! rule applied to the oracle's statistics.
//!
//! ```sh
//! cargo run --release --example detour_selection
//! ```

use routing_detours::cloudstore::ProviderKind;
use routing_detours::detour_core::{DecisionRule, OracleSelector, ProbeSelector, Route};
use routing_detours::measure::RunProtocol;
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::{Client, NorthAmerica};

fn main() {
    let world = NorthAmerica::new();
    let routes = vec![
        Route::Direct,
        Route::via(world.hop_ualberta()),
        Route::via(world.hop_umich()),
    ];
    let size = 60 * MB;

    println!("selecting routes for 60 MB uploads (oracle = 7-run measured campaign)\n");
    println!(
        "{:<8} {:<13} {:<16} {:<16} {:<10}",
        "client", "provider", "oracle pick", "probe pick", "overlap rule"
    );
    for client in Client::all() {
        for kind in ProviderKind::all() {
            let provider = world.provider(kind);
            let spec = world.client(client);

            let oracle = OracleSelector {
                protocol: RunProtocol::paper(),
            };
            let (choice, stats) = oracle
                .choose(
                    &world,
                    &spec,
                    &provider,
                    &routes,
                    size,
                    &format!("{client:?}-{kind:?}"),
                    0,
                )
                .expect("oracle");

            let mut sim = world.build_sim(99);
            let probe = ProbeSelector::default()
                .choose(&mut sim, spec.node, spec.class, &provider, &routes, size)
                .expect("probe");

            // The paper's cautious rule: direct unless a detour's error bars
            // clear the direct route's.
            let best_detour = (1..routes.len())
                .min_by(|&a, &b| stats[a].mean.partial_cmp(&stats[b].mean).unwrap())
                .expect("detours exist");
            let overlap_pick =
                if DecisionRule::OverlapAware.prefer_detour(&stats[0], &stats[best_detour]) {
                    routes[best_detour].label()
                } else {
                    "Direct".to_string()
                };

            println!(
                "{:<8} {:<13} {:<16} {:<16} {:<10}",
                client.name(),
                kind.display_name(),
                format!(
                    "{} ({:.0}s)",
                    routes[choice.route_idx].label(),
                    choice.expected_secs
                ),
                routes[probe.route_idx].label(),
                overlap_pick,
            );
        }
    }
    println!("\nThe probe selector costs one idle-rate estimate per leg; the oracle costs");
    println!("a full 7-run campaign per route. The overlap rule refuses detours whose");
    println!("error bars overlap the direct route's (paper §III-B).");
}
