//! Quickstart: reproduce the paper's headline result in ~30 lines.
//!
//! Uploading 100 MB from the UBC PlanetLab node to Google Drive takes ~87 s
//! directly, but ~36 s when detoured through the University of Alberta —
//! despite the geographic backtracking.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use routing_detours::cloudstore::UploadOptions;
use routing_detours::detour_core::{run_job, JobDetail, Route};
use routing_detours::netsim::flow::FlowClass;
use routing_detours::netsim::units::MB;
use routing_detours::scenarios::{Client, NorthAmerica};

fn main() {
    // The calibrated North-America world from the paper (Oct-Nov 2015).
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let drive = world.provider(routing_detours::cloudstore::ProviderKind::GoogleDrive);

    // Direct: UBC -> Google Drive with the provider API.
    let mut sim = world.build_sim(1);
    let direct = run_job(
        &mut sim,
        client.node,
        client.class,
        &drive,
        100 * MB,
        &Route::Direct,
        UploadOptions::warm(FlowClass::PlanetLab),
    )
    .expect("direct upload");

    // Detour: rsync UBC -> UAlberta, then upload UAlberta -> Google Drive.
    let mut sim = world.build_sim(1);
    let route = Route::via(world.hop_ualberta());
    let detour = run_job(
        &mut sim,
        client.node,
        client.class,
        &drive,
        100 * MB,
        &route,
        UploadOptions::warm(FlowClass::Research),
    )
    .expect("detoured upload");

    println!("UBC -> Google Drive, 100 MB (paper: 86.92 s direct, ~36 s detoured)");
    println!("  direct:       {:.2} s", direct.secs());
    match &detour.detail {
        JobDetail::Detour(r) => {
            println!(
                "  via UAlberta: {:.2} s  (rsync leg {:.2} s + upload {:.2} s)",
                detour.secs(),
                r.leg_times[0].as_secs_f64(),
                r.upload.elapsed.as_secs_f64()
            );
        }
        JobDetail::Direct(_) => unreachable!("route was a detour"),
    }
    println!("  speedup:      {:.2}x", direct.secs() / detour.secs());
    assert!(detour.secs() < direct.secs(), "the detour must win here");
}
