//! Use the library on *your own* network, not the paper's: build a custom
//! topology, attach a provider POP, inject congestion, and let the
//! route monitor decide when the detour is worth it.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use routing_detours::cloudstore::{Provider, ProviderKind, UploadOptions};
use routing_detours::detour_core::monitor::{MonitorConfig, ProbeLeg, RouteMonitor};
use routing_detours::detour_core::{run_job, Route};
use routing_detours::netsim::background::{BackgroundProfile, BackgroundTraffic};
use routing_detours::netsim::prelude::*;
use routing_detours::netsim::units::MB;

fn main() {
    // A company with a branch office (slow commodity uplink to the cloud),
    // a well-connected headquarters, and a private line between them.
    let mut b = TopologyBuilder::new();
    let branch = b.host("branch-office", GeoPoint::new(51.05, -114.07)); // Calgary
    let hq = b.host("headquarters", GeoPoint::new(43.65, -79.38)); // Toronto
    let isp = b.router("branch-isp", GeoPoint::new(51.0, -114.0));
    let ix = b.router("toronto-ix", GeoPoint::new(43.6, -79.4));
    let pop = b.datacenter("cloud-pop", GeoPoint::new(39.0, -77.5)); // Ashburn
    let bg_src = b.host("other-customers", GeoPoint::new(51.1, -114.1));
    let bg_dst = b.host("cdn-origin", GeoPoint::new(39.1, -77.6));

    b.duplex(branch, isp, LinkParams::geo(Bandwidth::from_mbps(200.0)));
    // The branch ISP's congested transit toward the cloud region.
    b.duplex(isp, pop, LinkParams::geo(Bandwidth::from_mbps(50.0)));
    // A clean private line to HQ and HQ's fat cloud on-ramp.
    b.duplex(branch, hq, LinkParams::geo(Bandwidth::from_mbps(150.0)));
    b.duplex(hq, ix, LinkParams::geo(Bandwidth::from_mbps(1000.0)));
    b.duplex(ix, pop, LinkParams::geo(Bandwidth::from_mbps(500.0)));
    // Background load shares the ISP transit.
    b.duplex(bg_src, isp, LinkParams::geo(Bandwidth::from_mbps(1000.0)));
    b.duplex(pop, bg_dst, LinkParams::geo(Bandwidth::from_mbps(1000.0)));
    let topo = b.build();

    let provider = Provider::new(ProviderKind::Dropbox, pop);

    // Measure both routes for an 80 MB artifact upload.
    let route_detour = Route::via(routing_detours::detour_core::Hop::new(
        hq,
        FlowClass::Commodity,
        "HQ",
    ));
    for (label, route) in [("direct", Route::Direct), ("via HQ", route_detour)] {
        let mut sim = Sim::new(topo.clone(), 42);
        sim.spawn_detached(Box::new(BackgroundTraffic::new(
            BackgroundProfile::heavy(bg_src, bg_dst).scaled(1.2),
        )));
        let report = run_job(
            &mut sim,
            branch,
            FlowClass::Commodity,
            &provider,
            80 * MB,
            &route,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .expect("upload");
        println!("branch -> Dropbox, 80 MB, {label}: {:.1} s", report.secs());
    }

    // Let the monitor watch both routes as congestion comes and goes.
    let mut sim = Sim::new(topo, 42);
    sim.spawn_detached(Box::new(BackgroundTraffic::new(
        BackgroundProfile::heavy(bg_src, bg_dst).scaled(1.2),
    )));
    let cfg = MonitorConfig {
        routes: vec![
            vec![ProbeLeg {
                src: branch,
                dst: pop,
                class: FlowClass::Commodity,
            }],
            vec![
                ProbeLeg {
                    src: branch,
                    dst: hq,
                    class: FlowClass::Commodity,
                },
                ProbeLeg {
                    src: hq,
                    dst: pop,
                    class: FlowClass::Commodity,
                },
            ],
        ],
        probe_bytes: MB,
        reference_bytes: 80 * MB,
        interval: SimTime::from_secs(30),
        epochs: 10,
        alpha: 0.5,
    };
    let v = sim
        .run_process(Box::new(RouteMonitor::new(cfg)))
        .expect("monitor");
    let choices = RouteMonitor::decode_choices(&v);
    let names = ["direct", "via HQ"];
    let timeline: Vec<&str> = choices.iter().map(|&c| names[c]).collect();
    println!("\nmonitor's per-epoch choice (every 30 s): {timeline:?}");
}
