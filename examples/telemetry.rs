//! One trace, the whole story: UBC→Google Drive, direct versus detour.
//!
//! Enables the telemetry subsystem on a single simulator, uploads 60 MB
//! directly and then again through the UAlberta DTN, and renders the
//! combined recording three ways:
//!
//! 1. the span tree (job → session/relay → part → RPC → flow) with
//!    simulated-time durations,
//! 2. the achieved-rate timeline of each route's largest flow, rebuilt
//!    from `flow.rate` events,
//! 3. the metrics snapshot (counters, gauges, percentile histograms).
//!
//! It also writes the Chrome trace-event JSON next to the binary — open it
//! in Perfetto (https://ui.perfetto.dev) to scrub through the same story.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use routing_detours::cloudstore::UploadOptions;
use routing_detours::detour_core::{run_job, Route};
use routing_detours::measure::chart::sparkline;
use routing_detours::netsim::units::MB;
use routing_detours::obs;
use routing_detours::scenarios::{Client, NorthAmerica};

const SIZE: u64 = 60 * MB;

fn main() {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(routing_detours::cloudstore::ProviderKind::GoogleDrive);

    let mut sim = world.build_sim(42);
    sim.enable_telemetry();
    let mut elapsed = Vec::new();
    for route in [Route::Direct, Route::via(world.hop_ualberta())] {
        let report = run_job(
            &mut sim,
            client.node,
            client.class,
            &provider,
            SIZE,
            &route,
            UploadOptions::warm(client.class),
        )
        .expect("upload succeeds");
        elapsed.push((route.label(), report.secs()));
    }
    let rec = sim.take_telemetry().expect("telemetry enabled");

    println!("== UBC -> Google Drive, 60 MB, one simulation, one trace ==\n");
    for (label, secs) in &elapsed {
        println!("  {label:<14} {secs:.2} s");
    }
    println!(
        "\n  the detour pays for two transfers and still wins: the direct\n  \
         path's commodity peering is the bottleneck the paper measured.\n"
    );

    println!(
        "== span tree (simulated time) ==\n{}",
        obs::span_tree_text(&rec)
    );

    // Rebuild each job's biggest flow rate timeline from flow.rate events.
    for job in rec.spans.iter().filter(|s| s.name == "job") {
        let label = match job.args.iter().find(|(k, _)| *k == "route") {
            Some((_, obs::ArgValue::Str(s))) => s.clone(),
            _ => "?".into(),
        };
        // Every allocator rate change of every flow under this job, in
        // simulated-time order: the route's achieved-rate timeline.
        let job_flows: Vec<obs::SpanId> = rec
            .spans
            .iter()
            .filter(|s| s.name == "flow" && rec.ancestors(s.id).iter().any(|a| a.id == job.id))
            .map(|s| s.id)
            .collect();
        let mut rates: Vec<(u64, f64)> = rec
            .events
            .iter()
            .filter(|e| e.name == "flow.rate" && job_flows.contains(&e.parent))
            .filter_map(|e| {
                e.args.iter().find_map(|(k, v)| match (k, v) {
                    (&"bytes_per_sec", obs::ArgValue::F64(r)) => Some((e.t_ns, *r / 1e6)),
                    _ => None,
                })
            })
            .collect();
        rates.sort_by_key(|&(t, _)| t);
        let series: Vec<f64> = rates.iter().map(|&(_, r)| r).collect();
        println!(
            "{:<14} flow-rate changes (MB/s, {} samples): {}",
            label,
            series.len(),
            sparkline(&series)
        );
    }

    println!(
        "\n{}",
        routing_detours::measure::metrics_table(&rec.metrics.snapshot(), "metrics").render()
    );

    let path = "target/telemetry-ubc-gdrive.trace.json";
    std::fs::write(path, obs::chrome_trace_json(&rec)).expect("write trace");
    println!("wrote {path} — load it in Perfetto to scrub the same story.");
}
